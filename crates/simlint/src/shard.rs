//! Shard-safety analysis: certifies the simulator is partitionable into
//! per-GPU shards.
//!
//! ROADMAP item 1 (the deterministic parallel engine) assumes the Trans-FW
//! property: translation state is per-GPU except at explicit
//! forwarding/fabric boundaries, so shards only interact via
//! latency-bounded messages (classic conservative-PDES lookahead). This
//! module makes that assumption *statically checkable* with three passes
//! over the [`crate::symbols::Workspace`]:
//!
//! * **`shard-confinement`** — any function that reads or mutates a
//!   per-GPU container ([`crate::Config::per_gpu_containers`]) must key
//!   every access off a *single* value flowing from its signature (the
//!   owning `GpuId` or a request id that resolves to one). Sweeping a
//!   container, keying it off nothing the signature provides, or keying
//!   two accesses off two distinct signature roots is cross-shard access —
//!   legal only inside the designated boundary modules
//!   ([`crate::Config::shard_boundary_modules`]) and the epoch digest
//!   functions (which run at the epoch barrier by construction). A small
//!   derivation fixpoint follows `let`/`for` bindings so `let gi = g as
//!   usize; self.gpus[gi]` still counts as keyed by `g`, while `for g in
//!   0..self.gpus.len()` poisons `g` into a sweep.
//! * **`epoch-digest-coverage`** — generalizes `digest-complete`
//!   transitively: every struct reachable through fields of a struct mixed
//!   into the epoch `StateDigest` ([`crate::Config::epoch_root`]) must
//!   have all its fields covered by the epoch digest path. Structs with
//!   their own digest method are audited field-by-field by
//!   `digest-complete` already, so this pass only checks the *nested*
//!   plain structs that PR 9's top-level check was blind to — and it
//!   excludes constructor-named functions (`new`/`default`/`clone`) from
//!   the mention union, which would otherwise cover every field
//!   vacuously.
//! * **`order-dependent-iteration`** — a closure passed to
//!   `retain`/`for_each` over a `DetMap`/`DetSet`-typed field that
//!   mutates captured sim state outside the iterated map. Sequentially
//!   the key-ordered iteration hides the hazard; under sharding the
//!   per-shard sub-maps iterate in a different global order and
//!   bit-identity breaks.
//!
//! Besides violations, the confinement pass emits [`ShardSite`]s — every
//! cross-shard access inside a boundary module, with its disposition.
//! Rendered to `shard_boundary.json`, that list *is* the shard boundary
//! contract the parallel-engine PR builds against: anything not in it is
//! statically confined to one shard.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokKind;
use crate::symbols::{CallGraph, FnNode, Workspace};
use crate::{Config, Lint, Violation};

/// One cross-shard access site in the boundary contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the access.
    pub line: usize,
    /// Access kind: `sweep`, `unkeyed` or `multi-key`.
    pub kind: String,
    /// The container swept/accessed, or the fn for `multi-key`.
    pub what: String,
    /// `boundary:<module prefix>`, `boundary:epoch-digest`, or `waived`.
    pub disposition: String,
}

impl ShardSite {
    /// A site recording an inline-waived shard finding, so the boundary
    /// contract stays complete even where a human overrode the lint.
    pub fn waived_from(v: &Violation) -> Self {
        let (kind, what) = v
            .key
            .split_once('(')
            .map(|(k, rest)| (k.to_string(), rest.trim_end_matches(')').to_string()))
            .unwrap_or_else(|| (v.key.clone(), String::new()));
        Self {
            file: v.file.clone(),
            line: v.line,
            kind,
            what,
            disposition: "waived".to_string(),
        }
    }
}

/// Output of the shard-safety layer.
#[derive(Debug, Default)]
pub struct ShardOutput {
    /// Findings subject to the inline-waiver rule and baseline diffing.
    pub violations: Vec<Violation>,
    /// Boundary-module cross-shard sites (dispositioned, not violations).
    pub sites: Vec<ShardSite>,
}

/// Runs the three shard-safety passes over `ws`.
pub fn analyze(ws: &Workspace, cfg: &Config) -> ShardOutput {
    let mut out = ShardOutput::default();
    shard_confinement(ws, cfg, &mut out);
    epoch_digest_coverage(ws, cfg, &mut out.violations);
    order_dependent_iteration(ws, cfg, &mut out.violations);
    out
}

/// Renders the boundary contract as deterministic JSON (the caller has
/// already sorted the sites).
pub fn render_report(sites: &[ShardSite]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("[\n");
    for (i, s) in sites.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"what\": \"{}\", \"disposition\": \"{}\"}}{}\n",
            esc(&s.file),
            s.line,
            esc(&s.kind),
            esc(&s.what),
            esc(&s.disposition),
            if i + 1 == sites.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// How one access into a per-GPU container is keyed.
#[derive(Debug)]
enum AccessKind {
    /// Keyed off these signature roots (derivation followed).
    Keyed(BTreeSet<String>),
    /// Iterates/touches every GPU's slot.
    Sweep,
    /// Keyed off nothing the signature provides.
    Unkeyed,
}

/// One detected container access.
#[derive(Debug)]
struct Access {
    line: usize,
    container: String,
    kind: AccessKind,
}

/// Container methods that address a single key.
const KEYED_METHODS: &[&str] =
    &["get", "get_mut", "insert", "remove", "contains_key", "entry", "contains"];
/// Container methods that read only the shard count, not per-GPU state.
const NEUTRAL_METHODS: &[&str] = &["len", "is_empty"];
/// Constructor-shaped fns whose bodies mention every field by definition;
/// including them makes any coverage audit vacuous.
const CONSTRUCTOR_NAMES: &[&str] = &["new", "default", "clone"];

/// The poison origin: a binding derived from a container sweep.
const POISON: &str = "*";

/// Type idents that mark a field as a per-GPU *collection*. A scalar field
/// that merely shares a container's name (`SystemConfig.gpus: u16`, the GPU
/// *count*) is not per-GPU state.
const COLLECTION_TYPES: &[&str] = &["Vec", "VecDeque", "DetMap", "DetSet"];

/// `shard-confinement`: see module docs.
fn shard_confinement(ws: &Workspace, cfg: &Config, out: &mut ShardOutput) {
    // (crate, struct) -> names of its non-collection fields, so a method on
    // `SystemConfig` reading `self.gpus: u16` is not mistaken for an access
    // into `System.gpus: Vec<Gpu>`.
    let mut scalar_fields: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for unit in &ws.units {
        if !cfg.shard_crates.contains(&unit.ctx.crate_dir) {
            continue;
        }
        for s in &unit.hir.structs {
            let scalars = scalar_fields
                .entry((unit.ctx.crate_dir.clone(), s.name.clone()))
                .or_default();
            for field in &s.fields {
                if !field.ty.iter().any(|t| COLLECTION_TYPES.contains(&t.as_str())) {
                    scalars.insert(field.name.clone());
                }
            }
        }
    }
    for unit in &ws.units {
        if !cfg.shard_crates.contains(&unit.ctx.crate_dir)
            || unit.ctx.is_test_file
            || !unit.ctx.rel_path.contains("/src/")
        {
            continue;
        }
        let boundary = cfg
            .shard_boundary_modules
            .iter()
            .find(|m| unit.ctx.rel_path.starts_with(m.as_str()));
        for f in &unit.hir.fns {
            if f.in_test || f.body == (0, 0) {
                continue;
            }
            let origins = bind_origins(f, &cfg.per_gpu_containers);
            // Container names shadowed by a scalar field on the receiver
            // type are not per-GPU state for this fn's `self.` accesses.
            let shadowed = f
                .self_ty
                .as_ref()
                .and_then(|ty| {
                    scalar_fields.get(&(unit.ctx.crate_dir.clone(), ty.clone()))
                })
                .cloned()
                .unwrap_or_default();
            let accesses = scan_accesses(
                &unit.lexed.tokens,
                f.body,
                &cfg.per_gpu_containers,
                &origins,
                &shadowed,
            );
            // The epoch digest fns run only at the epoch barrier, under
            // the `System` epoch layer — their sweeps are boundary sites.
            let digest_fn = cfg.digest_fn_names.contains(&f.name);
            let mut fn_keys: BTreeSet<String> = BTreeSet::new();
            let mut cross: Vec<(usize, String, &'static str)> = Vec::new();
            for a in &accesses {
                match &a.kind {
                    AccessKind::Keyed(ks) => fn_keys.extend(ks.iter().cloned()),
                    AccessKind::Sweep => cross.push((a.line, a.container.clone(), "sweep")),
                    AccessKind::Unkeyed => {
                        cross.push((a.line, a.container.clone(), "unkeyed"));
                    }
                }
            }
            if fn_keys.len() > 1 {
                cross.push((f.line, f.name.clone(), "multi-key"));
            }
            for (line, what, kind) in cross {
                let disposition = match (boundary, digest_fn) {
                    (Some(m), _) => Some(format!("boundary:{m}")),
                    (None, true) => Some("boundary:epoch-digest".to_string()),
                    (None, false) => None,
                };
                match disposition {
                    Some(disposition) => out.sites.push(ShardSite {
                        file: unit.ctx.rel_path.clone(),
                        line,
                        kind: kind.to_string(),
                        what,
                        disposition,
                    }),
                    None => out.violations.push(Violation {
                        lint: Lint::ShardConfinement,
                        file: unit.ctx.rel_path.clone(),
                        line,
                        key: format!("{kind}({what})"),
                        message: confinement_message(kind, &what, &f.name, &fn_keys),
                    }),
                }
            }
        }
    }
}

fn confinement_message(
    kind: &str,
    what: &str,
    fn_name: &str,
    keys: &BTreeSet<String>,
) -> String {
    match kind {
        "sweep" => format!(
            "`{fn_name}` sweeps per-GPU container `{what}` outside a boundary \
             module; a shard owns exactly one GPU's state — route cross-GPU \
             scans through the protocol/recovery/placement boundary or the \
             `System` epoch layer"
        ),
        "unkeyed" => format!(
            "`{fn_name}` accesses per-GPU container `{what}` with no key \
             flowing from its signature; take the owning `GpuId` as a \
             parameter so the access is provably confined to one shard"
        ),
        _ => format!(
            "`{fn_name}` keys per-GPU state off more than one signature root \
             ({}); touching two GPUs' state is cross-shard and belongs in a \
             boundary module",
            keys.iter().cloned().collect::<Vec<_>>().join(", ")
        ),
    }
}

/// Derivation fixpoint over a fn's `let`/`for` bindings: which signature
/// parameters each binding's value flows from. Origins only grow
/// (rebinding unions, conservatively), so the iteration terminates. A
/// binding whose initializer touches a per-GPU container is poisoned —
/// `for g in 0..self.gpus.len()` ranges over every shard.
fn bind_origins(
    f: &crate::hir::FnDef,
    containers: &[String],
) -> BTreeMap<String, BTreeSet<String>> {
    let mut map: BTreeMap<String, BTreeSet<String>> = f
        .param_names
        .iter()
        .map(|p| (p.clone(), BTreeSet::from([p.clone()])))
        .collect();
    loop {
        let mut changed = false;
        for (names, rhs) in &f.lets {
            let mut set: BTreeSet<String> = BTreeSet::new();
            for id in rhs {
                match id.strip_prefix('.') {
                    Some(field) if containers.contains(&field.to_string()) => {
                        set.insert(POISON.to_string());
                    }
                    Some(_) => {}
                    None if containers.contains(id) => {
                        set.insert(POISON.to_string());
                    }
                    None => {
                        if id != "self" {
                            if let Some(o) = map.get(id) {
                                let o = o.clone();
                                set.extend(o);
                            }
                        }
                    }
                }
            }
            for name in names {
                let entry = map.entry(name.clone()).or_default();
                let before = entry.len();
                entry.extend(set.iter().cloned());
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }
    map
}

/// Scans a body token range for accesses into the per-GPU containers and
/// classifies each one. Only direct `self.<container>` receivers count: a
/// same-named field of a *nested* struct (`self.stats.refaults`) is that
/// struct's business, and local re-borrows of a container surface at the
/// `let` that created them via [`bind_origins`] poisoning.
fn scan_accesses(
    toks: &[crate::lexer::Tok],
    body: (usize, usize),
    containers: &[String],
    origins: &BTreeMap<String, BTreeSet<String>>,
    shadowed: &BTreeSet<String>,
) -> Vec<Access> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        let TokKind::Ident(name) = &toks[i].kind else { continue };
        if !containers.contains(name) || shadowed.contains(name) || i < 2 {
            continue;
        }
        if !toks[i - 1].is_punct('.') || toks[i - 2].ident() != Some("self") {
            continue;
        }
        let line = toks[i].line;
        let kind = match toks.get(i + 1).map(|t| &t.kind) {
            Some(TokKind::Punct('[')) => {
                classify_keys(toks, i + 1, body.1, '[', ']', origins)
            }
            Some(TokKind::Punct('.')) => {
                let method = toks.get(i + 2).and_then(|t| t.ident()).unwrap_or("");
                let called = toks.get(i + 3).is_some_and(|t| t.is_punct('('));
                if called && NEUTRAL_METHODS.contains(&method) {
                    continue; // shard count, not per-GPU state
                } else if called && KEYED_METHODS.contains(&method) {
                    classify_keys(toks, i + 3, body.1, '(', ')', origins)
                } else {
                    AccessKind::Sweep
                }
            }
            // Bare container use: iterated, borrowed whole, or moved.
            _ => AccessKind::Sweep,
        };
        out.push(Access { line, container: name.clone(), kind });
    }
    out
}

/// Classifies a bracketed/parenthesized key expression: the union of the
/// origins of its root identifiers.
fn classify_keys(
    toks: &[crate::lexer::Tok],
    open: usize,
    end: usize,
    open_ch: char,
    close_ch: char,
    origins: &BTreeMap<String, BTreeSet<String>>,
) -> AccessKind {
    let mut set: BTreeSet<String> = BTreeSet::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct(c) if *c == open_ch => depth += 1,
            TokKind::Punct(c) if *c == close_ch => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident(id)
                if !toks[j - 1].is_punct('.') && !toks[j - 1].is_punct(':') =>
            {
                if let Some(o) = origins.get(id) {
                    set.extend(o.iter().cloned());
                }
            }
            _ => {}
        }
        j += 1;
    }
    if set.contains(POISON) {
        AccessKind::Sweep
    } else if set.is_empty() {
        AccessKind::Unkeyed
    } else {
        AccessKind::Keyed(set)
    }
}

/// `epoch-digest-coverage`: see module docs.
fn epoch_digest_coverage(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    let unit_ids = ws.units_in(&cfg.digest_crates);
    if unit_ids.is_empty() {
        return;
    }
    let graph = CallGraph::build(ws, &unit_ids);
    // The epoch root: the state_digest fn in the configured file.
    let mut roots: Vec<FnNode> = Vec::new();
    let mut root_ty: Option<String> = None;
    for &ui in &unit_ids {
        let unit = &ws.units[ui];
        if unit.ctx.rel_path != cfg.epoch_root.0 {
            continue;
        }
        for (fi, f) in unit.hir.fns.iter().enumerate() {
            if !f.in_test && f.name == cfg.epoch_root.1 {
                roots.push((ui, fi));
                root_ty = root_ty.or_else(|| f.self_ty.clone());
            }
        }
    }
    let (Some(root_ty), false) = (root_ty, roots.is_empty()) else {
        return;
    };
    let root_crate = ws.units[roots[0].0].ctx.crate_dir.clone();
    // Closure over the epoch digest path: stay in the root crate or step
    // into digest-named fns of component crates; never into constructors.
    let mut seen: BTreeSet<FnNode> = roots.iter().copied().collect();
    let mut queue: VecDeque<FnNode> = roots.iter().copied().collect();
    while let Some(node) = queue.pop_front() {
        for callee in &ws.fn_def(node).callees {
            if CONSTRUCTOR_NAMES.contains(&callee.as_str()) {
                continue;
            }
            for crate_dir in &cfg.digest_crates {
                for &t in graph.named_in(crate_dir, callee) {
                    let td = ws.fn_def(t);
                    let on_path = ws.units[t.0].ctx.crate_dir == root_crate
                        || cfg.digest_fn_names.contains(&td.name);
                    if on_path && seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
    }
    let mut mentions: BTreeSet<&str> = BTreeSet::new();
    for &node in &seen {
        let f = ws.fn_def(node);
        if CONSTRUCTOR_NAMES.contains(&f.name.as_str()) {
            continue;
        }
        mentions.extend(f.sig_idents.iter().map(String::as_str));
        mentions.extend(f.body_idents.iter().map(|(id, _)| id.as_str()));
    }
    // Struct tables over the digest crates.
    let mut structs_by_name: BTreeMap<&str, Vec<(usize, &crate::hir::StructDef)>> =
        BTreeMap::new();
    let mut digest_bearing: BTreeSet<&str> = BTreeSet::new();
    for &ui in &unit_ids {
        let unit = &ws.units[ui];
        for s in &unit.hir.structs {
            if !s.in_test {
                structs_by_name.entry(s.name.as_str()).or_default().push((ui, s));
            }
        }
        for f in &unit.hir.fns {
            if !f.in_test && cfg.digest_fn_names.contains(&f.name) {
                if let Some(ty) = f.self_ty.as_deref() {
                    digest_bearing.insert(ty);
                }
            }
        }
    }
    // BFS over the field-type graph from the root struct.
    let mut tseen: BTreeSet<String> = BTreeSet::new();
    let mut tqueue: VecDeque<String> = VecDeque::from([root_ty]);
    while let Some(ty) = tqueue.pop_front() {
        // `*Config` never changes mid-run and `*Stats` is derived
        // accounting; neither determines the rest of the run, so neither
        // belongs in the epoch digest contract.
        if !tseen.insert(ty.clone())
            || cfg.epoch_exempt_types.contains(&ty)
            || ty.ends_with("Config")
            || ty.ends_with("Stats")
        {
            continue;
        }
        let Some(defs) = structs_by_name.get(ty.as_str()) else {
            continue; // enum, alias, or foreign type: opaque to the audit
        };
        for &(ui, s) in defs {
            for field in &s.fields {
                for t in &field.ty {
                    if structs_by_name.contains_key(t.as_str()) {
                        tqueue.push_back(t.clone());
                    }
                }
            }
            // Digest-bearing structs are audited by digest-complete; this
            // pass owns the nested plain structs it cannot see.
            if digest_bearing.contains(ty.as_str()) {
                continue;
            }
            for field in &s.fields {
                if !mentions.contains(field.name.as_str()) {
                    out.push(Violation {
                        lint: Lint::EpochDigestCoverage,
                        file: ws.units[ui].ctx.rel_path.clone(),
                        line: field.line,
                        key: format!("uncovered({}.{})", s.name, field.name),
                        message: format!(
                            "`{}.{}` is reachable from the epoch `StateDigest` \
                             but never flows into its digest path; nested \
                             uncovered state is silent nondeterminism under \
                             sharded checkpoint/restore — mix it or waive it \
                             as derived/accounting-only",
                            s.name, field.name
                        ),
                    });
                }
            }
        }
    }
}

/// Methods that mutate a collection in place.
const MUTATING_METHODS: &[&str] = &["push", "push_back", "insert", "remove", "clear"];

/// `order-dependent-iteration`: see module docs.
fn order_dependent_iteration(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    // Field names whose declared type is a DetMap/DetSet anywhere in the
    // shard crates — the receivers whose iteration order the parallel
    // engine re-partitions.
    let mut det_fields: BTreeSet<&str> = BTreeSet::new();
    for unit in &ws.units {
        if !cfg.shard_crates.contains(&unit.ctx.crate_dir) {
            continue;
        }
        for s in &unit.hir.structs {
            for f in &s.fields {
                if f.ty.iter().any(|t| t == "DetMap" || t == "DetSet") {
                    det_fields.insert(f.name.as_str());
                }
            }
        }
    }
    if det_fields.is_empty() {
        return;
    }
    for unit in &ws.units {
        if !cfg.shard_crates.contains(&unit.ctx.crate_dir)
            || unit.ctx.is_test_file
            || !unit.ctx.rel_path.contains("/src/")
        {
            continue;
        }
        let toks = &unit.lexed.tokens;
        for i in 1..toks.len() {
            let TokKind::Ident(m) = &toks[i].kind else { continue };
            if (m != "retain" && m != "for_each")
                || !toks[i - 1].is_punct('.')
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || crate::lexer::in_regions(&unit.regions, toks[i].line)
            {
                continue;
            }
            // The receiver chain: a DetMap/DetSet field a few tokens back
            // (allowing `.iter()`/`.values_mut()` adapters in between).
            let field = (i.saturating_sub(12)..i.saturating_sub(1)).rev().find_map(|j| {
                let TokKind::Ident(id) = &toks[j].kind else { return None };
                (det_fields.contains(id.as_str()) && j > 0 && toks[j - 1].is_punct('.'))
                    .then(|| id.clone())
            });
            let Some(field) = field else { continue };
            // The closure body: does it reach back into `self` and mutate?
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut has_self = false;
            let mut mutates = false;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(id) if id == "self" => has_self = true,
                    TokKind::Ident(id)
                        if MUTATING_METHODS.contains(&id.as_str())
                            && toks[j - 1].is_punct('.') =>
                    {
                        mutates = true;
                    }
                    TokKind::Punct('=')
                        if !toks.get(j + 1).is_some_and(|t| {
                            t.is_punct('=') || t.is_punct('>')
                        }) && !matches!(
                            &toks[j - 1].kind,
                            TokKind::Punct('=')
                                | TokKind::Punct('<')
                                | TokKind::Punct('>')
                                | TokKind::Punct('!')
                        ) =>
                    {
                        mutates = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if has_self && mutates {
                out.push(Violation {
                    lint: Lint::OrderDependentIteration,
                    file: unit.ctx.rel_path.clone(),
                    line: toks[i].line,
                    key: format!("order-dep({field})"),
                    message: format!(
                        "closure passed to `.{m}` over `DetMap`/`DetSet` \
                         field `{field}` mutates captured sim state; the \
                         effect order follows iteration order, which \
                         re-partitions under sharding — collect the keys \
                         first, then mutate outside the iteration"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileCtx;

    fn fn_origins(src: &str) -> BTreeMap<String, BTreeSet<String>> {
        let ws = Workspace::build(&[(FileCtx::new("crates/mgpu/src/gmmu.rs"), src.to_string())]);
        let cfg = Config::trans_fw();
        bind_origins(&ws.units[0].hir.fns[0], &cfg.per_gpu_containers)
    }

    #[test]
    fn derivation_follows_let_chains() {
        let o = fn_origins(
            "fn f(&mut self, gpu: u16) { let gi = gpu as usize; let gj = gi + 1; }\n",
        );
        assert_eq!(o["gi"], BTreeSet::from(["gpu".to_string()]));
        assert_eq!(o["gj"], BTreeSet::from(["gpu".to_string()]));
    }

    #[test]
    fn container_ranges_poison_bindings() {
        let o = fn_origins(
            "fn f(&mut self, gpu: u16) { for g in 0..self.gpus.len() { touch(g); } }\n",
        );
        assert!(o["g"].contains(POISON));
    }

    #[test]
    fn waived_site_parses_the_key() {
        let v = Violation {
            lint: Lint::ShardConfinement,
            file: "crates/mgpu/src/overload.rs".into(),
            line: 7,
            key: "sweep(retry)".into(),
            message: String::new(),
        };
        let s = ShardSite::waived_from(&v);
        assert_eq!((s.kind.as_str(), s.what.as_str()), ("sweep", "retry"));
        assert_eq!(s.disposition, "waived");
    }

    #[test]
    fn report_renders_stable_json() {
        let sites = vec![ShardSite {
            file: "a.rs".into(),
            line: 3,
            kind: "sweep".into(),
            what: "gpus".into(),
            disposition: "boundary:crates/mgpu/src/system.rs".into(),
        }];
        let json = render_report(&sites);
        assert!(json.contains("\"kind\": \"sweep\""));
        assert!(json.ends_with("]\n"));
    }
}
