//! Workspace symbol table and call graph over the per-file HIR.
//!
//! [`Workspace::build`] lexes and parses every source file once; the
//! flow-aware passes then query it for structs, functions and call-graph
//! reachability. Resolution is name-based (the lexer has no type
//! information): a callee name resolves to *every* workspace function with
//! that name in scope. That over-approximates the true call graph — a
//! method call `.len()` reaches every `fn len` — which is the conservative
//! direction for reachability-style lints: false edges can only add
//! mentions (digest-completeness) or findings that a human waives once
//! (panic-reach), never silently miss a real path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::hir::{self, FileHir};
use crate::lexer::{self, Lexed};
use crate::FileCtx;

/// One analysed source file: context, token artefacts and HIR.
#[derive(Debug)]
pub struct Unit {
    /// Where the file sits in the workspace.
    pub ctx: FileCtx,
    /// Token stream and inline allow directives.
    pub lexed: Lexed,
    /// Test-gated line ranges.
    pub regions: Vec<(usize, usize)>,
    /// Item-level HIR.
    pub hir: FileHir,
}

/// Every analysed file, indexed for the workspace passes.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Units in input order.
    pub units: Vec<Unit>,
}

/// A function node: (unit index, index into that unit's `hir.fns`).
pub type FnNode = (usize, usize);

impl Workspace {
    /// Lexes and parses `sources` (pairs of file context and contents).
    pub fn build(sources: &[(FileCtx, String)]) -> Self {
        let units = sources
            .iter()
            .map(|(ctx, src)| {
                let lexed = lexer::lex(src);
                let regions = lexer::test_regions(&lexed.tokens);
                let hir = hir::parse(&lexed.tokens, &regions, ctx.is_test_file);
                Unit { ctx: ctx.clone(), lexed, regions, hir }
            })
            .collect();
        Self { units }
    }

    /// Unit indices whose crate dir is in `crates`.
    pub fn units_in(&self, crates: &[String]) -> Vec<usize> {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| crates.contains(&u.ctx.crate_dir))
            .map(|(i, _)| i)
            .collect()
    }

    /// The function definition behind a node.
    pub fn fn_def(&self, node: FnNode) -> &hir::FnDef {
        &self.units[node.0].hir.fns[node.1]
    }
}

/// A name-resolved call graph over a set of units.
///
/// Edges follow callee names: within a crate always, across crates only
/// when [`CallGraph::reachable`] is asked to. Test-gated functions are
/// excluded entirely — test helpers may panic freely.
#[derive(Debug)]
pub struct CallGraph<'w> {
    ws: &'w Workspace,
    /// Name → nodes, per crate dir.
    by_crate: BTreeMap<&'w str, BTreeMap<&'w str, Vec<FnNode>>>,
}

impl<'w> CallGraph<'w> {
    /// Builds the graph over `unit_ids` (typically one crate's units or an
    /// entire lint scope).
    pub fn build(ws: &'w Workspace, unit_ids: &[usize]) -> Self {
        let mut by_crate: BTreeMap<&str, BTreeMap<&str, Vec<FnNode>>> = BTreeMap::new();
        for &ui in unit_ids {
            let unit = &ws.units[ui];
            for (fi, f) in unit.hir.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                by_crate
                    .entry(unit.ctx.crate_dir.as_str())
                    .or_default()
                    .entry(f.name.as_str())
                    .or_default()
                    .push((ui, fi));
            }
        }
        Self { ws, by_crate }
    }

    /// Functions named `name` in crate `crate_dir`.
    pub fn named_in(&self, crate_dir: &str, name: &str) -> &[FnNode] {
        self.by_crate
            .get(crate_dir)
            .and_then(|m| m.get(name))
            .map_or(&[], Vec::as_slice)
    }

    /// BFS closure over callee names from `roots`. With `cross_crate`
    /// false, edges stay inside each node's own crate (the
    /// digest-completeness contract: a crate's digest path); with it true,
    /// a callee name resolves in every crate in the graph (panic-reach).
    pub fn reachable(&self, roots: &[FnNode], cross_crate: bool) -> BTreeSet<FnNode> {
        let mut seen: BTreeSet<FnNode> = roots.iter().copied().collect();
        let mut queue: VecDeque<FnNode> = roots.iter().copied().collect();
        while let Some(node) = queue.pop_front() {
            let home = self.ws.units[node.0].ctx.crate_dir.as_str();
            for callee in &self.ws.fn_def(node).callees {
                let mut push = |targets: &[FnNode]| {
                    for &t in targets {
                        if seen.insert(t) {
                            queue.push_back(t);
                        }
                    }
                };
                if cross_crate {
                    for per_name in self.by_crate.values() {
                        if let Some(ts) = per_name.get(callee.as_str()) {
                            push(ts);
                        }
                    }
                } else {
                    push(self.named_in(home, callee));
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(FileCtx, String)> = files
            .iter()
            .map(|(p, s)| (FileCtx::new(p), (*s).to_string()))
            .collect();
        Workspace::build(&sources)
    }

    #[test]
    fn same_crate_reachability() {
        let w = ws(&[(
            "crates/tlb/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n",
        )]);
        let ids = w.units_in(&["crates/tlb".to_string()]);
        let g = CallGraph::build(&w, &ids);
        let root = g.named_in("crates/tlb", "a").to_vec();
        let reach = g.reachable(&root, false);
        let names: Vec<&str> = reach.iter().map(|&n| w.fn_def(n).name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn cross_crate_needs_the_flag() {
        let w = ws(&[
            ("crates/mgpu/src/system.rs", "fn tick() { helper_frob(); }\n"),
            ("crates/uvm/src/lib.rs", "pub fn helper_frob() { inner(); }\nfn inner() {}\n"),
        ]);
        let ids: Vec<usize> = (0..w.units.len()).collect();
        let g = CallGraph::build(&w, &ids);
        let root = g.named_in("crates/mgpu", "tick").to_vec();
        assert_eq!(g.reachable(&root, false).len(), 1, "stays in mgpu");
        let cross = g.reachable(&root, true);
        let names: Vec<&str> = cross.iter().map(|&n| w.fn_def(n).name.as_str()).collect();
        assert!(names.contains(&"helper_frob") && names.contains(&"inner"), "{names:?}");
    }

    #[test]
    fn trait_object_calls_resolve_by_name() {
        // `p.decide()` through `Box<dyn Policy>` has no static receiver
        // type; name-based resolution must conservatively edge into every
        // same-named method so reachability (panic-reach, the shard
        // confinement contract) over-approximates rather than misses.
        let w = ws(&[(
            "crates/mgpu/src/lib.rs",
            "trait Policy { fn decide(&mut self); }\n\
             struct Greedy;\n\
             impl Policy for Greedy { fn decide(&mut self) { greedy_inner(); } }\n\
             fn greedy_inner() {}\n\
             fn drive(p: &mut Box<dyn Policy>) { p.decide(); }\n",
        )]);
        let ids: Vec<usize> = (0..w.units.len()).collect();
        let g = CallGraph::build(&w, &ids);
        let root = g.named_in("crates/mgpu", "drive").to_vec();
        let reach = g.reachable(&root, false);
        let names: Vec<&str> = reach.iter().map(|&n| w.fn_def(n).name.as_str()).collect();
        assert!(
            names.contains(&"decide") && names.contains(&"greedy_inner"),
            "dyn dispatch must over-approximate: {names:?}"
        );
    }

    #[test]
    fn generic_bound_calls_resolve_by_name() {
        // Monomorphized `t.decide()` under `T: Policy` likewise edges into
        // every impl — and the over-approximation stays conservative: a
        // method the driver never names is NOT pulled into the closure.
        let w = ws(&[(
            "crates/mgpu/src/lib.rs",
            "trait Policy { fn decide(&mut self); fn audit(&self); }\n\
             struct Greedy;\n\
             impl Policy for Greedy {\n\
                 fn decide(&mut self) {}\n\
                 fn audit(&self) { audit_inner(); }\n\
             }\n\
             fn audit_inner() {}\n\
             fn run<T: Policy>(t: &mut T) { t.decide(); }\n",
        )]);
        let ids: Vec<usize> = (0..w.units.len()).collect();
        let g = CallGraph::build(&w, &ids);
        let root = g.named_in("crates/mgpu", "run").to_vec();
        let reach = g.reachable(&root, false);
        let names: Vec<&str> = reach.iter().map(|&n| w.fn_def(n).name.as_str()).collect();
        assert!(names.contains(&"decide"), "{names:?}");
        assert!(
            !names.contains(&"audit") && !names.contains(&"audit_inner"),
            "uncalled trait method leaked into the closure: {names:?}"
        );
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let w = ws(&[(
            "crates/tlb/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { live(); } }\n",
        )]);
        let ids: Vec<usize> = (0..w.units.len()).collect();
        let g = CallGraph::build(&w, &ids);
        assert!(g.named_in("crates/tlb", "helper").is_empty());
        assert_eq!(g.named_in("crates/tlb", "live").len(), 1);
    }
}
