//! `simlint` CLI: lint the workspace and diff against the baseline.
//!
//! ```text
//! cargo run -p simlint                      # lint, diff against simlint.baseline.toml
//! cargo run -p simlint -- --json            # machine-readable report on stdout
//! cargo run -p simlint -- --deny-stale      # stale baseline entries are errors (CI)
//! cargo run -p simlint -- --write-bench     # append a findings snapshot to BENCH_LINT.json
//! cargo run -p simlint -- --check-bench     # diff per-lint counts against the last snapshot
//! cargo run -p simlint -- --write-baseline  # regenerate the baseline (justifications = TODO)
//! cargo run -p simlint -- --write-shard-report  # regenerate shard_boundary.json
//! cargo run -p simlint -- --check-shard-report  # diff the contract against the committed copy
//! cargo run -p simlint -- --root /path --baseline other.toml
//! ```
//!
//! Exit codes: 0 clean (all findings baselined/waived), 1 new violations,
//! stale entries under `--deny-stale`, a bench regression under
//! `--check-bench`, a shard-contract drift under `--check-shard-report`,
//! or a broken baseline file; 2 usage error.

use simlint::{Baseline, Config, Lint, Report};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    write_baseline: bool,
    verbose: bool,
    json: bool,
    deny_stale: bool,
    write_bench: bool,
    check_bench: bool,
    write_shard_report: bool,
    check_shard_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut verbose = false;
    let mut json = false;
    let mut deny_stale = false;
    let mut write_bench = false;
    let mut check_bench = false;
    let mut write_shard_report = false;
    let mut check_shard_report = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => write_baseline = true,
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--deny-stale" => deny_stale = true,
            "--write-bench" => write_bench = true,
            "--check-bench" => check_bench = true,
            "--write-shard-report" => write_shard_report = true,
            "--check-shard-report" => check_shard_report = true,
            "--help" | "-h" => {
                println!(
                    "simlint — workspace determinism & protocol linter\n\n\
                     USAGE: simlint [--root DIR] [--baseline FILE] [--write-baseline]\n\
                     \x20              [--json] [--deny-stale] [--write-bench] [--check-bench]\n\
                     \x20              [--write-shard-report] [--check-shard-report] [-v]\n\n\
                     Lints:"
                );
                for lint in Lint::all() {
                    println!("  {}", lint.name());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // Default root: walk up from CWD to the directory holding the
    // workspace Cargo.toml, so `cargo run -p simlint` works from anywhere
    // inside the repo.
    if root.as_os_str() == "." {
        let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                root = dir;
                break;
            }
            if !dir.pop() {
                return Err("could not locate the workspace root (no Cargo.toml with crates/); pass --root".into());
            }
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("simlint.baseline.toml"));
    Ok(Args {
        root,
        baseline,
        write_baseline,
        verbose,
        json,
        deny_stale,
        write_bench,
        check_bench,
        write_shard_report,
        check_shard_report,
    })
}

/// Findings per lint name (zero-filled so trends never drop a series).
fn per_lint_counts(report: &Report) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = Lint::all().iter().map(|l| (l.name(), 0)).collect();
    for v in report.violations.iter().chain(&report.waived) {
        *counts.entry(v.lint.name()).or_insert(0) += 1;
    }
    counts
}

/// Minimal JSON string escaping (the only strings we emit are paths,
/// lint names, keys and messages — no exotic control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The machine-readable report: totals, per-lint counts, and every
/// finding (new, baselined, and waived) with its disposition.
fn render_json(report: &Report, diff: &simlint::Diff) -> String {
    let counts = per_lint_counts(report);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"findings\": {},\n",
        report.violations.len() + report.waived.len()
    ));
    out.push_str(&format!("  \"waived\": {},\n", report.waived.len()));
    out.push_str(&format!("  \"new\": {},\n", diff.new.len()));
    out.push_str(&format!("  \"stale\": {},\n", diff.stale.len()));
    out.push_str("  \"per_lint\": {");
    let body: Vec<String> = counts
        .iter()
        .map(|(name, n)| format!("{}: {n}", json_str(name)))
        .collect();
    out.push_str(&body.join(", "));
    out.push_str("},\n  \"violations\": [\n");
    let mut rows = Vec::new();
    for v in &report.violations {
        let disposition = if diff.new.contains(v) { "new" } else { "baselined" };
        rows.push((v, disposition));
    }
    for v in &report.waived {
        rows.push((v, "waived"));
    }
    // Fully deterministic order across the merged lists, so archived CI
    // reports diff cleanly run to run.
    rows.sort_by(|(a, _), (b, _)| {
        (&a.file, a.line, a.lint.name(), &a.key).cmp(&(&b.file, b.line, b.lint.name(), &b.key))
    });
    let rendered: Vec<String> = rows
        .iter()
        .map(|(v, disposition)| {
            format!(
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"key\": {}, \
                 \"disposition\": {}, \"message\": {}}}",
                json_str(v.lint.name()),
                json_str(&v.file),
                v.line,
                json_str(&v.key),
                json_str(disposition),
                json_str(&v.message)
            )
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// One `BENCH_LINT.json` trajectory snapshot.
fn render_bench_entry(seq: usize, report: &Report) -> String {
    let counts = per_lint_counts(report);
    let body: Vec<String> = counts
        .iter()
        .map(|(name, n)| format!("{}: {n}", json_str(name)))
        .collect();
    format!(
        "  {{\"seq\": {seq}, \"files\": {}, \"findings\": {}, \"waived\": {}, \"per_lint\": {{{}}}}}",
        report.files_scanned,
        report.violations.len() + report.waived.len(),
        report.waived.len(),
        body.join(", ")
    )
}

/// Pulls `"per_lint": {...}` maps out of `BENCH_LINT.json` with a hand
/// scanner (the file is machine-written, flat, and dependency-free
/// parsing is a crate constraint). Returns the *last* snapshot's map.
fn last_bench_counts(text: &str) -> Option<BTreeMap<String, usize>> {
    let start = text.rfind("\"per_lint\"")?;
    let open = text[start..].find('{')? + start;
    let close = text[open..].find('}')? + open;
    let mut map = BTreeMap::new();
    for pair in text[open + 1..close].split(',') {
        let (k, v) = pair.split_once(':')?;
        let name = k.trim().trim_matches('"').to_string();
        let n: usize = v.trim().parse().ok()?;
        map.insert(name, n);
    }
    Some(map)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::trans_fw();
    let report = match simlint::run_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let baseline = Baseline::covering(&report.violations);
        if let Err(e) = std::fs::write(&args.baseline, baseline.render()) {
            eprintln!("simlint: write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} entries to {} (fill in the TODO justifications)",
            baseline.entries.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if args.baseline.is_file() {
        match std::fs::read_to_string(&args.baseline)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: baseline {}: {e}", args.baseline.display());
                return ExitCode::from(1);
            }
        }
    } else {
        Baseline::default()
    };

    let diff = baseline.diff(&report.violations);
    let bench_path = args.root.join("BENCH_LINT.json");
    let shard_path = args.root.join("shard_boundary.json");

    if args.write_shard_report {
        let rendered = simlint::shard::render_report(&report.shard_sites);
        if let Err(e) = std::fs::write(&shard_path, &rendered) {
            eprintln!("simlint: write {}: {e}", shard_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simlint: wrote {} boundary sites to {}",
            report.shard_sites.len(),
            shard_path.display()
        );
    }

    let mut shard_drift = false;
    if args.check_shard_report {
        let rendered = simlint::shard::render_report(&report.shard_sites);
        match std::fs::read_to_string(&shard_path) {
            Ok(committed) if committed == rendered => {}
            Ok(_) => {
                eprintln!(
                    "shard contract drift: {} no longer matches the analysis \
                     (run --write-shard-report and review the diff — every \
                     change to the cross-shard surface is a contract change)",
                    shard_path.display()
                );
                shard_drift = true;
            }
            Err(e) => {
                eprintln!("simlint: read {}: {e}", shard_path.display());
                shard_drift = true;
            }
        }
    }

    if args.write_bench {
        let existing = std::fs::read_to_string(&bench_path).unwrap_or_default();
        let seq = existing.matches("\"seq\"").count() + 1;
        let entry = render_bench_entry(seq, &report);
        let merged = match existing.trim_end().strip_suffix(']') {
            Some(head) if head.trim_end().ends_with('}') => {
                format!("{},\n{entry}\n]\n", head.trim_end())
            }
            _ => format!("[\n{entry}\n]\n"),
        };
        if let Err(e) = std::fs::write(&bench_path, merged) {
            eprintln!("simlint: write {}: {e}", bench_path.display());
            return ExitCode::from(2);
        }
        eprintln!("simlint: appended snapshot #{seq} to {}", bench_path.display());
    }

    let mut bench_regressed = false;
    if args.check_bench {
        match std::fs::read_to_string(&bench_path) {
            Ok(text) => match last_bench_counts(&text) {
                Some(last) => {
                    let now = per_lint_counts(&report);
                    for (name, &n) in &now {
                        let then = last.get(*name).copied().unwrap_or(0);
                        if n > then {
                            eprintln!(
                                "bench regression: {name} findings grew {then} -> {n} \
                                 (run --write-bench after a justified increase)"
                            );
                            bench_regressed = true;
                        }
                    }
                }
                None => {
                    eprintln!("simlint: {}: no per_lint snapshot found", bench_path.display());
                    bench_regressed = true;
                }
            },
            Err(e) => {
                eprintln!("simlint: read {}: {e}", bench_path.display());
                bench_regressed = true;
            }
        }
    }

    if args.json {
        print!("{}", render_json(&report, &diff));
    } else {
        if args.verbose {
            for v in &report.waived {
                println!("waived: {v}");
            }
            for v in &report.violations {
                if !diff.new.contains(v) {
                    println!("baselined: {v}");
                }
            }
        }
        for e in &diff.stale {
            println!(
                "stale baseline entry: {} {} {} (count {}) — tighten the ratchet",
                e.lint, e.file, e.key, e.count
            );
        }
        for v in &diff.new {
            println!("error: {v}");
        }
        println!(
            "simlint: {} files, {} findings ({} baselined, {} waived inline), {} new",
            report.files_scanned,
            report.violations.len() + report.waived.len(),
            report.violations.len() - diff.new.len(),
            report.waived.len(),
            diff.new.len()
        );
    }
    let stale_fails = args.deny_stale && !diff.stale.is_empty();
    if stale_fails && args.json {
        eprintln!("simlint: {} stale baseline entries (--deny-stale)", diff.stale.len());
    }
    if diff.new.is_empty() && !stale_fails && !bench_regressed && !shard_drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
