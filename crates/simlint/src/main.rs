//! `simlint` CLI: lint the workspace and diff against the baseline.
//!
//! ```text
//! cargo run -p simlint                      # lint, diff against simlint.baseline.toml
//! cargo run -p simlint -- --write-baseline  # regenerate the baseline (justifications = TODO)
//! cargo run -p simlint -- --root /path --baseline other.toml
//! ```
//!
//! Exit codes: 0 clean (all findings baselined/waived), 1 new violations
//! (or a broken baseline file), 2 usage error.

use simlint::{Baseline, Config, Lint};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    write_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut verbose = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => write_baseline = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "simlint — workspace determinism & protocol linter\n\n\
                     USAGE: simlint [--root DIR] [--baseline FILE] [--write-baseline] [-v]\n\n\
                     Lints:"
                );
                for lint in Lint::all() {
                    println!("  {}", lint.name());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // Default root: walk up from CWD to the directory holding the
    // workspace Cargo.toml, so `cargo run -p simlint` works from anywhere
    // inside the repo.
    if root.as_os_str() == "." {
        let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                root = dir;
                break;
            }
            if !dir.pop() {
                return Err("could not locate the workspace root (no Cargo.toml with crates/); pass --root".into());
            }
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("simlint.baseline.toml"));
    Ok(Args { root, baseline, write_baseline, verbose })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::trans_fw();
    let report = match simlint::run_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let baseline = Baseline::covering(&report.violations);
        if let Err(e) = std::fs::write(&args.baseline, baseline.render()) {
            eprintln!("simlint: write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: wrote {} entries to {} (fill in the TODO justifications)",
            baseline.entries.len(),
            args.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if args.baseline.is_file() {
        match std::fs::read_to_string(&args.baseline)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: baseline {}: {e}", args.baseline.display());
                return ExitCode::from(1);
            }
        }
    } else {
        Baseline::default()
    };

    let diff = baseline.diff(&report.violations);
    if args.verbose {
        for v in &report.waived {
            println!("waived: {v}");
        }
        for v in &report.violations {
            if !diff.new.contains(v) {
                println!("baselined: {v}");
            }
        }
    }
    for e in &diff.stale {
        println!(
            "stale baseline entry: {} {} {} (count {}) — tighten the ratchet",
            e.lint, e.file, e.key, e.count
        );
    }
    for v in &diff.new {
        println!("error: {v}");
    }
    println!(
        "simlint: {} files, {} findings ({} baselined, {} waived inline), {} new",
        report.files_scanned,
        report.violations.len() + report.waived.len(),
        report.violations.len() - diff.new.len(),
        report.waived.len(),
        diff.new.len()
    );
    if diff.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
