//! Fixture-driven integration tests: one positive (violating) and one
//! negative (clean) snippet per lint class, plus the self-test that the
//! real workspace matches the checked-in baseline.

use simlint::{lint_file, lint_metrics, Baseline, Config, FileCtx, Lint};

/// Lints a fixture as if it lived at `as_path` in the workspace.
fn lint_fixture(src: &str, as_path: &str) -> Vec<simlint::Violation> {
    lint_file(&FileCtx::new(as_path), src, &Config::trans_fw())
}

fn lints_of(vs: &[simlint::Violation]) -> Vec<Lint> {
    vs.iter().map(|v| v.lint).collect()
}

#[test]
fn det_collections_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/det_collections_pos.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(
        pos.iter().all(|v| v.lint == Lint::DetCollections) && pos.len() >= 2,
        "expected HashMap+HashSet findings, got {pos:?}"
    );
    let neg = lint_fixture(
        include_str!("fixtures/det_collections_neg.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn det_wallclock_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/det_wallclock_pos.rs"),
        "crates/experiments/src/runner.rs",
    );
    let keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    assert!(pos.iter().all(|v| v.lint == Lint::DetWallclock));
    for expect in ["Instant", "SystemTime", "rand::random", "thread_rng"] {
        assert!(keys.contains(&expect), "missing {expect} in {keys:?}");
    }
    let neg = lint_fixture(
        include_str!("fixtures/det_wallclock_neg.rs"),
        "crates/experiments/src/runner.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn det_wallclock_backoff_fixture_pair() {
    // The overload subsystem's retry backoff is the classic place ambient
    // jitter sneaks in: a backoff helper seeded from Instant/thread_rng
    // must be flagged, the SimRng-jittered equivalent must be clean.
    let pos = lint_fixture(
        include_str!("fixtures/det_wallclock_backoff_pos.rs"),
        "crates/mgpu/src/overload.rs",
    );
    let keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    assert!(pos.iter().all(|v| v.lint == Lint::DetWallclock), "{pos:?}");
    for expect in ["Instant", "SystemTime", "rand::random", "thread_rng"] {
        assert!(keys.contains(&expect), "missing {expect} in {keys:?}");
    }
    let neg = lint_fixture(
        include_str!("fixtures/det_wallclock_backoff_neg.rs"),
        "crates/mgpu/src/overload.rs",
    );
    assert!(neg.is_empty(), "deterministic backoff flagged: {neg:?}");
}

#[test]
fn panic_freedom_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/panic_freedom_pos.rs"),
        "crates/mgpu/src/system.rs",
    );
    let mut keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(keys, ["expect", "index", "unwrap"], "{pos:?}");
    // The same snippet outside a hot-path file is not linted.
    let elsewhere = lint_fixture(
        include_str!("fixtures/panic_freedom_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(elsewhere.is_empty());
    let neg = lint_fixture(
        include_str!("fixtures/panic_freedom_neg.rs"),
        "crates/mgpu/src/system.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn protocol_exhaustive_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/protocol_exhaustive_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert_eq!(lints_of(&pos), [Lint::ProtocolExhaustive], "{pos:?}");
    assert_eq!(pos[0].key, "wildcard-arm(Event)");
    let neg = lint_fixture(
        include_str!("fixtures/protocol_exhaustive_neg.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn protocol_transition_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/protocol_transition_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert_eq!(lints_of(&pos), [Lint::ProtocolTransition], "{pos:?}");
    assert_eq!(pos[0].key, "match(ProtocolEvent)");
    // The identical handler *inside* the shared transition module is the
    // one place it belongs.
    let home = lint_fixture(
        include_str!("fixtures/protocol_transition_pos.rs"),
        "crates/mgpu/src/protocol/mod.rs",
    );
    assert!(home.is_empty(), "transition home flagged: {home:?}");
    let neg = lint_fixture(
        include_str!("fixtures/protocol_transition_neg.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn metrics_complete_fixture_pair() {
    let cfg = Config::trans_fw();
    let metrics = include_str!("fixtures/metrics_complete_pos.rs");
    let pos = lint_metrics(
        metrics,
        include_str!("fixtures/metrics_complete_pos_ser.rs"),
        &cfg,
    );
    assert_eq!(lints_of(&pos), [Lint::MetricsComplete], "{pos:?}");
    assert_eq!(pos[0].key, "missing-field(l1_hits)");
    let neg = lint_metrics(
        metrics,
        include_str!("fixtures/metrics_complete_neg_ser.rs"),
        &cfg,
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

/// Runs the full pipeline (token lints + flow-aware passes) over fixture
/// files mounted at the given workspace paths.
fn run_fixture_sources(files: &[(&str, &str)]) -> simlint::Report {
    let sources: Vec<(FileCtx, String)> = files
        .iter()
        .map(|(path, src)| (FileCtx::new(path), (*src).to_string()))
        .collect();
    simlint::run_sources(&sources, &Config::trans_fw())
}

#[test]
fn lexer_tricky_fixture_pair() {
    // Raw strings, nested block comments, byte/C strings and escapes must
    // neither hide real violations nor manufacture false ones.
    let neg = lint_fixture(
        include_str!("fixtures/lexer_tricky_neg.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(neg.is_empty(), "literal-only fixture flagged: {neg:?}");
    let pos = lint_fixture(
        include_str!("fixtures/lexer_tricky_pos.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(
        !pos.is_empty() && pos.iter().all(|v| v.lint == Lint::DetCollections),
        "expected the post-decoy HashMap findings, got {pos:?}"
    );
}

#[test]
fn digest_complete_fixture_pair() {
    let pos = run_fixture_sources(&[(
        "crates/tlb/src/state.rs",
        include_str!("fixtures/digest_complete_pos.rs"),
    )]);
    assert_eq!(lints_of(&pos.violations), [Lint::DigestComplete], "{pos:?}");
    assert_eq!(pos.violations[0].key, "undigested(WalkCache.pressure)");
    let neg = run_fixture_sources(&[(
        "crates/tlb/src/state.rs",
        include_str!("fixtures/digest_complete_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
    // The derived field is waived, not silently ignored.
    assert_eq!(lints_of(&neg.waived), [Lint::DigestComplete], "{:?}", neg.waived);
    assert_eq!(neg.waived[0].key, "undigested(WalkCache.hit_rate_cache)");
}

#[test]
fn rng_stream_fixture_pair() {
    let pos = run_fixture_sources(&[(
        "crates/uvm/src/stream.rs",
        include_str!("fixtures/rng_stream_pos.rs"),
    )]);
    let mut keys: Vec<&str> = pos.violations.iter().map(|v| v.key.as_str()).collect();
    keys.sort_unstable();
    assert!(pos.violations.iter().all(|v| v.lint == Lint::RngStream), "{pos:?}");
    assert_eq!(
        keys,
        [
            "rng-across-boundary",
            "shared-stream-seed",
            "shared-stream-seed",
            "unsalted-stream"
        ],
        "{:?}",
        pos.violations
    );
    let neg = run_fixture_sources(&[(
        "crates/uvm/src/stream.rs",
        include_str!("fixtures/rng_stream_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

#[test]
fn counter_saturation_fixture_pair() {
    let pos = run_fixture_sources(&[(
        "crates/ptw/src/stats.rs",
        include_str!("fixtures/counter_saturation_pos.rs"),
    )]);
    assert_eq!(
        lints_of(&pos.violations),
        [Lint::CounterSaturation, Lint::CounterSaturation],
        "{pos:?}"
    );
    assert!(pos.violations.iter().all(|v| v.key == "raw-add(issued)"), "{pos:?}");
    let neg = run_fixture_sources(&[(
        "crates/ptw/src/stats.rs",
        include_str!("fixtures/counter_saturation_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

#[test]
fn panic_reach_fixture_pair() {
    // The hazard sits one crate over from the hot path that reaches it.
    let hot = include_str!("fixtures/panic_reach_hot.rs");
    let pos = run_fixture_sources(&[
        ("crates/mgpu/src/system.rs", hot),
        (
            "crates/ptw/src/helper.rs",
            include_str!("fixtures/panic_reach_helper_pos.rs"),
        ),
    ]);
    assert_eq!(lints_of(&pos.violations), [Lint::PanicReach], "{pos:?}");
    assert_eq!(pos.violations[0].file, "crates/ptw/src/helper.rs");
    assert_eq!(pos.violations[0].key, "reach(helper_lookup.unwrap)");
    let neg = run_fixture_sources(&[
        ("crates/mgpu/src/system.rs", hot),
        (
            "crates/ptw/src/helper.rs",
            include_str!("fixtures/panic_reach_helper_neg.rs"),
        ),
    ]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

#[test]
fn panic_reach_through_dyn_dispatch_fixture_pair() {
    // Dyn dispatch erases the receiver type; the name-resolved call graph
    // must still carry `tick -> decide` into the impl (pos) without
    // dragging in trait methods the hot path never names (neg).
    let hot = include_str!("fixtures/callgraph_dyn_hot.rs");
    let pos = run_fixture_sources(&[
        ("crates/mgpu/src/system.rs", hot),
        (
            "crates/ptw/src/policy_impl.rs",
            include_str!("fixtures/callgraph_dyn_pos.rs"),
        ),
    ]);
    assert_eq!(lints_of(&pos.violations), [Lint::PanicReach], "{:?}", pos.violations);
    assert_eq!(pos.violations[0].key, "reach(decide.unwrap)");
    let neg = run_fixture_sources(&[
        ("crates/mgpu/src/system.rs", hot),
        (
            "crates/ptw/src/policy_impl.rs",
            include_str!("fixtures/callgraph_dyn_neg.rs"),
        ),
    ]);
    assert!(neg.violations.is_empty(), "uncalled `audit` flagged: {:?}", neg.violations);
}

#[test]
fn shard_confinement_fixture_pair() {
    // Outside a boundary module all three cross-shard shapes fire.
    let pos = run_fixture_sources(&[(
        "crates/mgpu/src/gmmu.rs",
        include_str!("fixtures/shard_confinement_pos.rs"),
    )]);
    let keys: Vec<&str> = pos.violations.iter().map(|v| v.key.as_str()).collect();
    assert!(
        pos.violations.iter().all(|v| v.lint == Lint::ShardConfinement),
        "{:?}",
        pos.violations
    );
    assert_eq!(
        keys,
        ["sweep(gpus)", "unkeyed(gpus)", "multi-key(two_gpus)"],
        "{:?}",
        pos.violations
    );
    assert!(pos.shard_sites.is_empty(), "non-boundary fixture produced sites");
    // Keyed through the signature (directly or via a `let` derivation),
    // or reading only the shard count: confined, nothing fires.
    let neg = run_fixture_sources(&[(
        "crates/mgpu/src/gmmu.rs",
        include_str!("fixtures/shard_confinement_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

#[test]
fn shard_confinement_boundary_becomes_site_not_violation() {
    // The exact sweep that violates elsewhere is a dispositioned boundary
    // site inside `mgpu::protocol` — it lands in the shard contract.
    let report = run_fixture_sources(&[(
        "crates/mgpu/src/protocol/mod.rs",
        include_str!("fixtures/shard_confinement_boundary.rs"),
    )]);
    assert!(
        !report.violations.iter().any(|v| v.lint == Lint::ShardConfinement),
        "boundary module flagged: {:?}",
        report.violations
    );
    assert_eq!(report.shard_sites.len(), 1, "{:?}", report.shard_sites);
    let site = &report.shard_sites[0];
    assert_eq!(
        (site.kind.as_str(), site.what.as_str(), site.disposition.as_str()),
        ("sweep", "gpus", "boundary:crates/mgpu/src/protocol"),
        "{site:?}"
    );
}

#[test]
fn epoch_digest_coverage_fixture_pair() {
    // The top-level digest mentions every `System` field, so PR 9's
    // digest-complete is clean on both fixtures — only the transitive
    // audit can see the nested hole.
    let pos = run_fixture_sources(&[(
        "crates/mgpu/src/recovery.rs",
        include_str!("fixtures/epoch_digest_coverage_pos.rs"),
    )]);
    assert_eq!(
        lints_of(&pos.violations),
        [Lint::EpochDigestCoverage],
        "{:?}",
        pos.violations
    );
    assert_eq!(pos.violations[0].key, "uncovered(Inner.hidden)");
    let neg = run_fixture_sources(&[(
        "crates/mgpu/src/recovery.rs",
        include_str!("fixtures/epoch_digest_coverage_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

#[test]
fn order_dependent_iteration_fixture_pair() {
    let pos = run_fixture_sources(&[(
        "crates/mgpu/src/policy.rs",
        include_str!("fixtures/order_dependent_iteration_pos.rs"),
    )]);
    assert_eq!(
        lints_of(&pos.violations),
        [Lint::OrderDependentIteration, Lint::OrderDependentIteration],
        "{:?}",
        pos.violations
    );
    assert!(
        pos.violations.iter().all(|v| v.key == "order-dep(owners)"),
        "{:?}",
        pos.violations
    );
    let neg = run_fixture_sources(&[(
        "crates/mgpu/src/policy.rs",
        include_str!("fixtures/order_dependent_iteration_neg.rs"),
    )]);
    assert!(neg.violations.is_empty(), "clean fixture flagged: {:?}", neg.violations);
}

/// The real workspace must lint clean against the checked-in baseline —
/// the same check CI's static-analysis job runs, wired into `cargo test`
/// so a violation can never land without also failing the test suite.
#[test]
fn workspace_matches_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint has a workspace root two levels up")
        .to_path_buf();
    let cfg = Config::trans_fw();
    let report = simlint::run_workspace(&root, &cfg).expect("workspace lints");
    let baseline_text = std::fs::read_to_string(root.join("simlint.baseline.toml"))
        .expect("simlint.baseline.toml is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    // The ratchet: no finding outside the baseline.
    let diff = baseline.diff(&report.violations);
    assert!(
        diff.new.is_empty(),
        "new simlint violations (fix them or justify in simlint.baseline.toml):\n{}",
        diff.new
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The ratchet only tightens: stale entries must be removed.
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries — shrink simlint.baseline.toml: {:?}",
        diff.stale
    );
    // Policy: determinism-class lints are never grandfathered.
    let det_entries: Vec<_> = baseline
        .entries
        .iter()
        .filter(|e| {
            Lint::from_name(&e.lint).is_some_and(Lint::is_determinism_class)
        })
        .collect();
    assert!(
        det_entries.is_empty(),
        "determinism-class baseline entries are forbidden: {det_entries:?}"
    );
    // And every entry carries a real justification.
    for e in &baseline.entries {
        assert!(
            !e.justification.trim().is_empty() && !e.justification.contains("TODO"),
            "baseline entry without a real justification: {e:?}"
        );
    }
    // The flow-aware lint classes hold at zero unwaived findings on the
    // real tree: hazards are fixed or carry an inline waiver, never
    // grandfathered through the baseline.
    let flow_lints = [
        Lint::DigestComplete,
        Lint::RngStream,
        Lint::CounterSaturation,
        Lint::PanicReach,
        Lint::ShardConfinement,
        Lint::EpochDigestCoverage,
        Lint::OrderDependentIteration,
    ];
    let flow_violations: Vec<_> = report
        .violations
        .iter()
        .filter(|v| flow_lints.contains(&v.lint))
        .collect();
    assert!(
        flow_violations.is_empty(),
        "flow-aware findings must be fixed or waived inline: {flow_violations:?}"
    );
    assert!(
        !baseline
            .entries
            .iter()
            .any(|e| Lint::from_name(&e.lint).is_some_and(|l| flow_lints.contains(&l))),
        "flow-aware lints are never grandfathered in the baseline"
    );
}

/// The shard-safety certificate: zero unwaived shard-confinement findings
/// outside the boundary modules, and the committed `shard_boundary.json`
/// is exactly the contract the analyzer derives from today's tree. A
/// cross-shard access can only land by showing up in the contract diff.
#[test]
fn workspace_matches_shard_boundary_contract() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint has a workspace root two levels up")
        .to_path_buf();
    let cfg = Config::trans_fw();
    let report = simlint::run_workspace(&root, &cfg).expect("workspace lints");
    // Every cross-shard access outside a boundary module is a violation;
    // none may exist — this is the partitionability certificate ROADMAP
    // item 1's parallel engine builds on.
    let escapes: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.lint == Lint::ShardConfinement)
        .collect();
    assert!(
        escapes.is_empty(),
        "cross-shard access outside protocol/recovery/placement/fabric/epoch \
         boundaries: {escapes:?}"
    );
    // Every boundary-module site is enumerated and dispositioned.
    for site in &report.shard_sites {
        assert!(
            site.disposition.starts_with("boundary:") || site.disposition == "waived",
            "undispositioned shard site: {site:?}"
        );
    }
    // The committed contract matches the derived one byte-for-byte.
    let committed = std::fs::read_to_string(root.join("shard_boundary.json"))
        .expect("shard_boundary.json is checked in");
    let derived = simlint::shard::render_report(&report.shard_sites);
    assert_eq!(
        committed, derived,
        "shard_boundary.json is stale — regenerate with \
         `cargo run -p simlint -- --write-shard-report` and review the diff"
    );
}
