//! Fixture-driven integration tests: one positive (violating) and one
//! negative (clean) snippet per lint class, plus the self-test that the
//! real workspace matches the checked-in baseline.

use simlint::{lint_file, lint_metrics, Baseline, Config, FileCtx, Lint};

/// Lints a fixture as if it lived at `as_path` in the workspace.
fn lint_fixture(src: &str, as_path: &str) -> Vec<simlint::Violation> {
    lint_file(&FileCtx::new(as_path), src, &Config::trans_fw())
}

fn lints_of(vs: &[simlint::Violation]) -> Vec<Lint> {
    vs.iter().map(|v| v.lint).collect()
}

#[test]
fn det_collections_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/det_collections_pos.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(
        pos.iter().all(|v| v.lint == Lint::DetCollections) && pos.len() >= 2,
        "expected HashMap+HashSet findings, got {pos:?}"
    );
    let neg = lint_fixture(
        include_str!("fixtures/det_collections_neg.rs"),
        "crates/tlb/src/state.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn det_wallclock_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/det_wallclock_pos.rs"),
        "crates/experiments/src/runner.rs",
    );
    let keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    assert!(pos.iter().all(|v| v.lint == Lint::DetWallclock));
    for expect in ["Instant", "SystemTime", "rand::random", "thread_rng"] {
        assert!(keys.contains(&expect), "missing {expect} in {keys:?}");
    }
    let neg = lint_fixture(
        include_str!("fixtures/det_wallclock_neg.rs"),
        "crates/experiments/src/runner.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn det_wallclock_backoff_fixture_pair() {
    // The overload subsystem's retry backoff is the classic place ambient
    // jitter sneaks in: a backoff helper seeded from Instant/thread_rng
    // must be flagged, the SimRng-jittered equivalent must be clean.
    let pos = lint_fixture(
        include_str!("fixtures/det_wallclock_backoff_pos.rs"),
        "crates/mgpu/src/overload.rs",
    );
    let keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    assert!(pos.iter().all(|v| v.lint == Lint::DetWallclock), "{pos:?}");
    for expect in ["Instant", "SystemTime", "rand::random", "thread_rng"] {
        assert!(keys.contains(&expect), "missing {expect} in {keys:?}");
    }
    let neg = lint_fixture(
        include_str!("fixtures/det_wallclock_backoff_neg.rs"),
        "crates/mgpu/src/overload.rs",
    );
    assert!(neg.is_empty(), "deterministic backoff flagged: {neg:?}");
}

#[test]
fn panic_freedom_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/panic_freedom_pos.rs"),
        "crates/mgpu/src/system.rs",
    );
    let mut keys: Vec<&str> = pos.iter().map(|v| v.key.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(keys, ["expect", "index", "unwrap"], "{pos:?}");
    // The same snippet outside a hot-path file is not linted.
    let elsewhere = lint_fixture(
        include_str!("fixtures/panic_freedom_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(elsewhere.is_empty());
    let neg = lint_fixture(
        include_str!("fixtures/panic_freedom_neg.rs"),
        "crates/mgpu/src/system.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn protocol_exhaustive_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/protocol_exhaustive_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert_eq!(lints_of(&pos), [Lint::ProtocolExhaustive], "{pos:?}");
    assert_eq!(pos[0].key, "wildcard-arm(Event)");
    let neg = lint_fixture(
        include_str!("fixtures/protocol_exhaustive_neg.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn protocol_transition_fixture_pair() {
    let pos = lint_fixture(
        include_str!("fixtures/protocol_transition_pos.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert_eq!(lints_of(&pos), [Lint::ProtocolTransition], "{pos:?}");
    assert_eq!(pos[0].key, "match(ProtocolEvent)");
    // The identical handler *inside* the shared transition module is the
    // one place it belongs.
    let home = lint_fixture(
        include_str!("fixtures/protocol_transition_pos.rs"),
        "crates/mgpu/src/protocol/mod.rs",
    );
    assert!(home.is_empty(), "transition home flagged: {home:?}");
    let neg = lint_fixture(
        include_str!("fixtures/protocol_transition_neg.rs"),
        "crates/mgpu/src/policy.rs",
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

#[test]
fn metrics_complete_fixture_pair() {
    let cfg = Config::trans_fw();
    let metrics = include_str!("fixtures/metrics_complete_pos.rs");
    let pos = lint_metrics(
        metrics,
        include_str!("fixtures/metrics_complete_pos_ser.rs"),
        &cfg,
    );
    assert_eq!(lints_of(&pos), [Lint::MetricsComplete], "{pos:?}");
    assert_eq!(pos[0].key, "missing-field(l1_hits)");
    let neg = lint_metrics(
        metrics,
        include_str!("fixtures/metrics_complete_neg_ser.rs"),
        &cfg,
    );
    assert!(neg.is_empty(), "clean fixture flagged: {neg:?}");
}

/// The real workspace must lint clean against the checked-in baseline —
/// the same check CI's static-analysis job runs, wired into `cargo test`
/// so a violation can never land without also failing the test suite.
#[test]
fn workspace_matches_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint has a workspace root two levels up")
        .to_path_buf();
    let cfg = Config::trans_fw();
    let report = simlint::run_workspace(&root, &cfg).expect("workspace lints");
    let baseline_text = std::fs::read_to_string(root.join("simlint.baseline.toml"))
        .expect("simlint.baseline.toml is checked in");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    // The ratchet: no finding outside the baseline.
    let diff = baseline.diff(&report.violations);
    assert!(
        diff.new.is_empty(),
        "new simlint violations (fix them or justify in simlint.baseline.toml):\n{}",
        diff.new
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The ratchet only tightens: stale entries must be removed.
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries — shrink simlint.baseline.toml: {:?}",
        diff.stale
    );
    // Policy: determinism-class lints are never grandfathered.
    let det_entries: Vec<_> = baseline
        .entries
        .iter()
        .filter(|e| {
            Lint::from_name(&e.lint).is_some_and(Lint::is_determinism_class)
        })
        .collect();
    assert!(
        det_entries.is_empty(),
        "determinism-class baseline entries are forbidden: {det_entries:?}"
    );
    // And every entry carries a real justification.
    for e in &baseline.entries {
        assert!(
            !e.justification.trim().is_empty() && !e.justification.contains("TODO"),
            "baseline entry without a real justification: {e:?}"
        );
    }
}
