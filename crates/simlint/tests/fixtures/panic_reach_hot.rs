//! Panic-reach fixture root: a hot-path event handler that calls a helper
//! living one crate over. The hot file itself is clean — the hazard is in
//! what it reaches.

pub fn dispatch_walk(vpn: u64) -> u64 {
    helper_lookup(vpn)
}
