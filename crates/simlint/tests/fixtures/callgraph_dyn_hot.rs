//! Fixture (hot path): the event loop drives a policy through a trait
//! object — the static receiver type is erased at the call site.

pub fn tick(p: &mut Box<dyn Policy>) {
    p.decide();
}
