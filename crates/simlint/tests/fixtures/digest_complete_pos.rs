//! Positive digest-completeness fixture: `WalkCache.pressure` never flows
//! into the digest path, even transitively.

pub struct WalkCache {
    entries: u64,
    evictions: u64,
    pressure: u64,
}

impl WalkCache {
    fn counters_digest(&self) -> u64 {
        self.evictions
    }

    pub fn state_digest(&self) -> u64 {
        self.entries ^ self.counters_digest()
    }
}
