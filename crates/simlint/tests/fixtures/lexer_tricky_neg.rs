//! Negative lexer fixture: every forbidden name below is inert text inside
//! raw strings, byte/C strings, nested block comments, or escapes — a lexer
//! that mis-tracks any of them will leak a false `det-collections` or
//! `det-wallclock` finding.

/* outer comment
   /* nested: HashMap::new() and Instant::now() live here */
   still commented: thread_rng()
*/

pub fn banners() -> Vec<String> {
    vec![
        r#"raw: HashMap<K, V> with a " quote"#.to_string(),
        r##"rawer: "# SystemTime::now() "# inside"##.to_string(),
        br#"byte raw: HashSet::from([1])"#.escape_ascii().to_string(),
        c"c string: rand::random()".to_string_lossy().into_owned(),
        "escaped quote \" then HashMap, still a string".to_string(),
        "escaped newline spans \
         a line: Instant::now()"
            .to_string(),
    ]
}

pub fn not_a_lifetime() -> char {
    let b = b'\'';
    let c = '\u{48}'; // 'H', not the start of HashMap
    char::from(b).max(c)
}
