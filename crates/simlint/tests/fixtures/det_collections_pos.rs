//! Positive fixture: raw hash collections in sim-state code.
use std::collections::{HashMap, HashSet};

/// Nondeterministic state: iteration order varies per process.
pub struct Bad {
    map: HashMap<u64, u32>,
    set: HashSet<u64>,
}
