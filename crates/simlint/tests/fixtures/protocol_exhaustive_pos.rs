//! Positive fixture: wildcard arm over a protocol enum.
pub fn bad(e: Event) -> u32 {
    match e {
        Event::GmmuWalkDone { req } => req,
        Event::HostDispatch => 0,
        _ => 1,
    }
}
