//! Fixture: closures run under DetMap iteration mutate captured sim
//! state — even over a deterministic map this couples per-element effects
//! to visitation order and blocks sharded execution.

pub struct Tracker {
    owners: DetMap<u64, u16>,
    moved: Vec<u64>,
}

impl Tracker {
    fn evict_all(&mut self) {
        self.owners.retain(|vpn, _owner| {
            self.moved.push(*vpn);
            false
        });
    }

    fn log_each(&mut self) {
        self.owners.iter().for_each(|(vpn, _owner)| {
            self.moved.push(*vpn);
        });
    }
}
