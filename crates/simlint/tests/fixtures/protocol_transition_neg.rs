// Fixture: the intended idiom — build a ProtocolEvent and delegate to the
// shared transition module; match freely over non-transition enums.

fn unmap_remote(&mut self, gpu: u32, vpn: u64) {
    let e = ProtocolEvent::Unmap { gpu, vpn };
    protocol::step(self, &e);
}

fn classify(outcome: WalkOutcome) -> &'static str {
    match outcome {
        WalkOutcome::Hit => "hit",
        WalkOutcome::Miss => "miss",
    }
}
