//! Negative fixture: the same jittered backoff drawn from the simulator's
//! seeded RNG stream — fully deterministic, replays bit-identically.
pub fn jittered_backoff(attempt: u32, base: u64, cap: u64, rng: &mut SimRng) -> u64 {
    let raw = base
        .checked_shl(attempt)
        .unwrap_or(cap)
        .min(cap)
        .max(1);
    // Jitter in [raw/2, raw], every bit of it from the seeded stream.
    raw / 2 + rng.gen_range(raw - raw / 2 + 1)
}
