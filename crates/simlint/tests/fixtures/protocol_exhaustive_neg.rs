//! Negative fixture: exhaustive protocol match; wildcard over a
//! non-protocol enum is fine.
pub fn good(e: Event, k: TxnKind) -> u32 {
    match e {
        Event::GmmuWalkDone { req } => req,
        Event::HostDispatch => match k {
            TxnKind::Read => 0,
            _ => 1,
        },
    }
}
