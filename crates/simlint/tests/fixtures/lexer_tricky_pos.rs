//! Positive lexer fixture: the same tricky literals as the negative twin,
//! but real forbidden code *after* them — a lexer derailed by the raw
//! strings or nested comments would miss these.

/* outer /* nested: HashMap::new() */ done */

pub fn decoy() -> String {
    r#"HashMap in a raw string is fine"#.to_string()
}

use std::collections::HashMap;

pub fn state() -> HashMap<u64, u64> {
    HashMap::new()
}
