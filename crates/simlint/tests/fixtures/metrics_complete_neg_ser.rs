//! Negative fixture (serializer side): every field appears.
pub fn run_json(m: &RunMetrics) -> String {
    let RunMetrics { app, total_cycles, l1_hits } = m;
    format!("{{\"app\":{app:?},\"total_cycles\":{total_cycles},\"l1_hits\":{l1_hits}}}")
}
