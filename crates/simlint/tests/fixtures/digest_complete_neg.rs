//! Negative digest-completeness fixture: every field is mixed (one
//! transitively, through a helper) and derived state is waived inline.

pub struct WalkCache {
    entries: u64,
    evictions: u64,
    pressure: u64,
    // simlint::allow(digest-complete): derived from entries/evictions on demand
    hit_rate_cache: u64,
}

impl WalkCache {
    fn counters_digest(&self) -> u64 {
        self.evictions ^ self.pressure
    }

    pub fn state_digest(&self) -> u64 {
        self.entries ^ self.counters_digest()
    }
}
