//! Positive fixture: wall-clock time and ambient randomness.
pub fn bad() -> (std::time::Instant, u8) {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    let r: u8 = rand::random();
    let _rng = rand::thread_rng();
    (t, r)
}
