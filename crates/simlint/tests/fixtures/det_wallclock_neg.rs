//! Negative fixture: simulated time and seeded randomness only.
pub fn good(now: Cycle, rng: &mut SimRng) -> (Cycle, u64) {
    // A method named `random` on the seeded RNG is fine; only the
    // ambient `rand::random` path form is nondeterministic.
    let r = rng.random();
    // Mentioning Instant in a comment or "Instant" in a string is fine.
    let _s = "Instant::now";
    (now + 1, r)
}
