//! Negative fixture: the same operations, panic-free.
pub fn good(reqs: &[u32], lock: &std::sync::Mutex<u32>, id: usize) -> u32 {
    let first = reqs.get(id).copied().unwrap_or(0);
    let guard = lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let val = maybe().unwrap_or_default();
    // Slice patterns, arrays and macros are not index expressions.
    let [_a, _b] = split();
    let _v = vec![1, 2];
    let _arr: [u8; 2] = make();
    first + *guard + val
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_may_unwrap() {
        let v = vec![1];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
