// Fixture: a ProtocolEvent handler outside crates/mgpu/src/protocol —
// duplicated transition logic the model checker would never see.

fn apply_locally(e: &ProtocolEvent) {
    match e {
        ProtocolEvent::Map { gpu, vpn, loc } => install(*gpu, *vpn, *loc),
        ProtocolEvent::Unmap { gpu, vpn } => drop_pte(*gpu, *vpn),
        ProtocolEvent::Commit(txn) => commit(txn),
        ProtocolEvent::Evict { gpu, report } => evict(*gpu, report),
        ProtocolEvent::Flush { gpu } => flush(*gpu),
        ProtocolEvent::Rejoin { gpu, resident } => rejoin(*gpu, resident),
    }
}
