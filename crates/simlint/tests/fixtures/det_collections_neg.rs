//! Negative fixture: ordered collections and test-only hash use.
use sim_core::det::{DetMap, DetSet};

/// Deterministic state: key-ordered iteration.
pub struct Good {
    map: DetMap<u64, u32>,
    set: DetSet<u64>,
}

#[cfg(test)]
mod tests {
    // Hash collections are fine in test-only code.
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let _m: HashMap<u8, u8> = HashMap::new();
    }
}
