//! Fixture: every field of every struct reachable from the epoch root's
//! digest is mentioned somewhere in the traversed digest code — clean.

pub struct System {
    now: u64,
    inner: Inner,
}

pub struct Inner {
    covered: u64,
    hidden: u64,
}

impl System {
    pub fn state_digest(&self) -> u64 {
        self.now ^ self.inner.covered ^ self.inner.hidden
    }
}
