//! Fixture: collect-then-mutate. The iteration closures are pure over
//! their arguments; captured sim state is only touched after the
//! iterator has been drained into a plain Vec — clean.

pub struct Tracker {
    owners: DetMap<u64, u16>,
    moved: Vec<u64>,
}

impl Tracker {
    fn evict_all(&mut self) {
        let doomed: Vec<u64> = self.owners.iter().map(|(vpn, _owner)| *vpn).collect();
        for vpn in doomed {
            self.moved.push(vpn);
        }
        self.owners.retain(|_vpn, owner| *owner != 0);
    }
}
