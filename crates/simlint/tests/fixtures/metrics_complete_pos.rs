//! Positive fixture (metrics side): a struct whose serializer below
//! drops a field. Paired with `metrics_complete_pos_ser.rs`.
pub struct RunMetrics {
    /// Application name.
    pub app: String,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Dropped by the bad serializer.
    pub l1_hits: u64,
}
