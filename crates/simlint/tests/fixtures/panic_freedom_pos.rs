//! Positive fixture: panics reachable from the event loop.
pub fn bad(reqs: &[u32], lock: &std::sync::Mutex<u32>, id: usize) -> u32 {
    let first = reqs[id];
    let guard = lock.lock().unwrap();
    let val = maybe().expect("always Some");
    first + *guard + val
}
