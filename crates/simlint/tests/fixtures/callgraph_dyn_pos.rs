//! Fixture: a panic hidden behind dyn dispatch. Name-based call-graph
//! resolution must still edge `tick -> decide` and flag the unwrap.

pub trait Policy {
    fn decide(&mut self);
}

pub struct Greedy {
    slots: Vec<u64>,
}

impl Policy for Greedy {
    fn decide(&mut self) {
        let head = self.slots.first().unwrap();
        consume(*head);
    }
}
