//! Fixture: cross-shard accesses outside a boundary module. All three
//! shapes must fire: a sweep, an unkeyed access, and a fn keying per-GPU
//! state off two distinct signature roots.

pub struct System {
    gpus: Vec<Gpu>,
}

impl System {
    /// Sweep: iterates every GPU's state.
    fn sweep_all(&mut self) {
        for gpu in &mut self.gpus {
            gpu.tick();
        }
    }

    /// Unkeyed: the index is conjured locally, nothing flows from the
    /// signature.
    fn unkeyed_touch(&mut self) {
        let g = 0;
        self.gpus[g].tick();
    }

    /// Multi-key: two distinct GpuIds from the signature — this fn can
    /// observe two shards at once.
    fn two_gpus(&mut self, a: u16, b: u16) {
        self.gpus[a as usize].tick();
        self.gpus[b as usize].tick();
    }
}
