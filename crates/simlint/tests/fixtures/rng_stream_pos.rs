//! Positive RNG-stream fixture: an unsalted stream over a shared seed, a
//! literal seed reused by two streams, and a raw stream handed across a
//! public boundary.

use sim_core::rng::SimRng;

pub struct Walker {
    rng: SimRng,
}

impl Walker {
    pub fn new(seed: u64) -> Self {
        Self { rng: SimRng::new(seed) }
    }
}

fn stream_a() -> SimRng {
    SimRng::new(0xDEAD_0001)
}

fn stream_b() -> SimRng {
    SimRng::new(0xDEAD_0001)
}

pub fn jitter(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}
