//! Negative counter-saturation fixture: every counter bump saturates.

pub struct WalkerStats {
    pub issued: u64,
    pub replayed: u64,
}

pub struct Walker {
    stats: WalkerStats,
}

impl Walker {
    pub fn issue(&mut self) {
        self.stats.issued = self.stats.issued.saturating_add(1);
    }

    pub fn activity(&self) -> u64 {
        self.stats.issued.saturating_add(self.stats.replayed)
    }
}
