//! Positive fixture (serializer side): forgets `l1_hits`.
pub fn run_json(m: &RunMetrics) -> String {
    format!("{{\"app\":{:?},\"total_cycles\":{}}}", m.app, m.total_cycles)
}
