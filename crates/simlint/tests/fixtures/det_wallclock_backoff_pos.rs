//! Positive fixture: retry backoff jittered from ambient sources. Every
//! one of these makes the retry schedule differ between replays of the
//! same seed, which breaks checkpoint/restore bit-identity.
pub fn jittered_backoff(attempt: u32, base: u64) -> u64 {
    let raw = base << attempt.min(5);
    // Wall-clock entropy as jitter:
    let t = std::time::Instant::now().elapsed().subsec_nanos() as u64;
    let e = std::time::SystemTime::now();
    let _ = e;
    // Ambient RNG as jitter:
    let r: u64 = rand::random();
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    raw / 2 + (t ^ r) % (raw / 2 + 1)
}
