//! Negative panic-reach fixture: the helper degrades instead of panicking.

fn translate(vpn: u64) -> Option<u64> {
    if vpn == 0 { None } else { Some(vpn << 12) }
}

pub fn helper_lookup(vpn: u64) -> u64 {
    translate(vpn).unwrap_or(0)
}
