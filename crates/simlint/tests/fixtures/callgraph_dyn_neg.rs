//! Fixture: the over-approximation stays conservative — the dyn-called
//! method is panic-free, and the panicking method `audit` is never named
//! by anything the hot path reaches, so nothing fires.

pub trait Policy {
    fn decide(&mut self);
    fn audit(&self);
}

pub struct Greedy {
    slots: Vec<u64>,
}

impl Policy for Greedy {
    fn decide(&mut self) {
        if let Some(head) = self.slots.first() {
            consume(*head);
        }
    }

    fn audit(&self) {
        let head = self.slots.first().unwrap();
        consume(*head);
    }
}
