//! Positive counter-saturation fixture: raw `+=` and a raw `+` total on
//! `u64` counter fields of a `*Stats` struct.

pub struct WalkerStats {
    pub issued: u64,
    pub replayed: u64,
}

pub struct Walker {
    stats: WalkerStats,
}

impl Walker {
    pub fn issue(&mut self) {
        self.stats.issued += 1;
    }

    pub fn activity(&self) -> u64 {
        self.stats.issued + self.stats.replayed
    }
}
