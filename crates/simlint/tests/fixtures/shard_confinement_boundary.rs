//! Fixture mounted at a boundary module (`mgpu::protocol`): the same
//! sweep that is a violation elsewhere is a *dispositioned boundary site*
//! here — it lands in the shard boundary contract, not in the findings.

pub struct Router {
    gpus: Vec<Peer>,
}

impl Router {
    /// Cross-shard by design: protocol broadcast to every peer.
    fn broadcast(&mut self) {
        for peer in &mut self.gpus {
            peer.poke();
        }
    }
}
