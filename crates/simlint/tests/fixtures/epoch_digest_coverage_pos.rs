//! Fixture: the epoch digest reaches a nested struct but leaves one of
//! its fields out — transitive coverage must flag `Inner.hidden` even
//! though the *top-level* digest mentions every `System` field (the PR 9
//! digest-complete pass is blind to this).

pub struct System {
    now: u64,
    inner: Inner,
}

pub struct Inner {
    covered: u64,
    hidden: u64,
}

impl System {
    pub fn state_digest(&self) -> u64 {
        self.now ^ self.inner.covered
    }
}
