//! Fixture: every per-GPU access is keyed off a single GpuId flowing from
//! the signature (directly, through a `let` derivation, or via a keyed
//! method), or reads only the shard count — all confined, nothing fires.

pub struct System {
    gpus: Vec<Gpu>,
}

impl System {
    fn keyed(&mut self, gpu: u16) {
        let gi = gpu as usize;
        self.gpus[gi].tick();
        if let Some(g) = self.gpus.get_mut(gi) {
            g.tick();
        }
    }

    fn derived_key(&mut self, req: ReqId) {
        let owner = owner_of(req);
        let slot = owner as usize;
        self.gpus[slot].tick();
    }

    fn shard_count(&self) -> usize {
        self.gpus.len()
    }
}
