//! Negative RNG-stream fixture: salted per-subsystem streams, a unique
//! literal seed, and a seed (not a stream) crossing the public boundary.

use sim_core::rng::SimRng;

const WALKER_SALT: u64 = 0x57A1_14E5;

pub struct Walker {
    rng: SimRng,
}

impl Walker {
    pub fn new(seed: u64) -> Self {
        Self { rng: SimRng::new(seed ^ WALKER_SALT) }
    }
}

fn fixed_stream() -> SimRng {
    SimRng::new(0xBEEF_0002)
}

pub fn jitter(seed: u64) -> u64 {
    let mut rng = SimRng::new(seed ^ 0x0717_7E55);
    rng.next_u64()
}
