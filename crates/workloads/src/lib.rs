//! The paper's application suite as synthetic access-stream generators.
//!
//! Table III classifies the ten applications by their cross-GPU data access
//! pattern: *partition* (AES), *adjacent* (FIR, KM, SC, ST, Conv2d),
//! *random* (PR) and *scatter-gather* (MM, MT, Im2col). The translation
//! behaviour the paper studies — TLB miss rates, page-walk pressure and,
//! crucially, page sharing across GPUs (Fig. 7) and its read/write mix
//! (Fig. 24) — is fully determined by each CTA's coalesced page-access
//! stream. [`AppSpec`] captures the knobs (footprint split into a globally
//! shared region, per-CTA partitions and neighbour halos; access run
//! lengths; write fractions; compute intensity) and generates those streams
//! deterministically.
//!
//! The paper's measured PFPKI values (Table III) and sharing degrees are
//! *outputs* of the simulator, not inputs; the specs here are tuned so the
//! relative ordering matches the paper (MT ≫ ST > PR > SC > KM > MM >
//! Conv2d > Im2col > AES > FIR).
//!
//! # Examples
//!
//! ```
//! use workloads::{app, all_apps};
//! use mgpu::workload::Workload;
//!
//! let mt = app("MT").expect("known app");
//! assert_eq!(mt.name(), "MT");
//! assert_eq!(all_apps().len(), 10);
//! ```

pub mod burst;
pub mod ml;
pub mod oversub;
pub mod phase;
pub mod select;
pub mod spec;

pub use burst::{burst, Burst};
pub use ml::{resnet18, vgg16, MlModel};
pub use oversub::{oversub_shift, OversubShift};
pub use phase::{phase_shift, PhaseShift};
pub use select::WorkloadSpec;
pub use spec::{AppSpec, Pattern};

/// All ten Table III applications with their default (paper-shaped) specs.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        spec::aes(),
        spec::fir(),
        spec::km(),
        spec::pr(),
        spec::mm(),
        spec::mt(),
        spec::sc(),
        spec::st(),
        spec::conv2d(),
        spec::im2col(),
    ]
}

/// Looks an application up by its Table III abbreviation
/// (case-insensitive).
pub fn app(name: &str) -> Option<AppSpec> {
    all_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu::workload::Workload;

    #[test]
    fn all_ten_apps_present() {
        let names: Vec<String> = all_apps().iter().map(|a| a.name.clone()).collect();
        for expect in ["AES", "FIR", "KM", "PR", "MM", "MT", "SC", "ST", "Conv2d", "Im2col"] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(app("mt").is_some());
        assert!(app("CONV2D").is_some());
        assert!(app("nope").is_none());
    }

    #[test]
    fn every_app_generates_nonempty_streams() {
        for a in all_apps() {
            let mut s = a.make_stream(0, 7);
            let first = s.next_access();
            assert!(first.is_some(), "{} produced an empty stream", a.name);
            let acc = first.unwrap();
            assert!(acc.vpn < a.footprint_pages(), "{} vpn out of range", a.name);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        for a in all_apps() {
            let collect = |seed| {
                let mut s = a.make_stream(3, seed);
                let mut v = Vec::new();
                while let Some(x) = s.next_access() {
                    v.push((x.vpn, x.is_write, x.compute));
                }
                v
            };
            assert_eq!(collect(42), collect(42), "{} not deterministic", a.name);
        }
    }

    #[test]
    fn streams_stay_in_footprint() {
        for a in all_apps() {
            for cta in [0, a.cta_count() / 2, a.cta_count() - 1] {
                let mut s = a.make_stream(cta, 1);
                while let Some(x) = s.next_access() {
                    assert!(
                        x.vpn < a.footprint_pages(),
                        "{} cta {cta} vpn {} >= {}",
                        a.name,
                        x.vpn,
                        a.footprint_pages()
                    );
                }
            }
        }
    }

    #[test]
    fn write_heavy_apps_write_more() {
        let writes = |a: &AppSpec| {
            let mut w = 0u64;
            let mut n = 0u64;
            for cta in 0..8 {
                let mut s = a.make_stream(cta, 5);
                while let Some(x) = s.next_access() {
                    n += 1;
                    if x.is_write {
                        w += 1;
                    }
                }
            }
            w as f64 / n as f64
        };
        let mt = writes(&app("MT").unwrap());
        let fir = writes(&app("FIR").unwrap());
        assert!(mt > fir, "MT ({mt}) should write more than FIR ({fir})");
    }
}
