//! A bursty open-loop access pattern for overload experiments.
//!
//! Each CTA's stream is a train of `bursts` dense access bursts separated by
//! long idle gaps. Inside a burst the compute spacing between memory
//! instructions is divided by the `offered_load` multiplier, so the arrival
//! rate of translation requests scales with load while the footprint and
//! access mix stay fixed — the open-loop knob the overload-control
//! experiments sweep (1x..8x). Burst `b` hammers hot window `b`, homed on
//! GPU `b mod gpus`, so every burst is a synchronized far-fault storm from
//! all the *other* GPUs onto one owner: the worst case for the host-MMU
//! queue, the owner's borrowed walkers, and the forwarding path the circuit
//! breakers guard.
//!
//! Unlike the closed-loop apps (which self-throttle: a stalled wavefront
//! stops issuing), the short intra-burst gaps keep offered load high even
//! while translations back up, which is what pushes the admission-control
//! watermarks and retry budgets into their shedding regime.

use mgpu::workload::{Access, AccessStream, Workload};
use sim_core::{Cycle, SimRng};

/// Bursty open-loop workload: dense access bursts, rotating hot owner, and
/// a tunable offered-load multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct Burst {
    /// Bursts per CTA stream (also the number of hot windows).
    pub bursts: usize,
    /// Memory instructions per burst.
    pub burst_accesses: usize,
    /// Idle compute cycles inserted between consecutive bursts.
    pub idle_gap: Cycle,
    /// Pages per hot window.
    pub window_pages: u64,
    /// Private pages per CTA (sequential sweep).
    pub private_pages: u64,
    /// Number of CTAs.
    pub ctas: usize,
    /// Offered-load multiplier: intra-burst compute gaps are divided by
    /// this, so 2 doubles the arrival rate of the same access train.
    pub offered_load: u64,
    /// Probability an access targets the current burst's hot window.
    pub p_hot: f64,
    /// Write probability (hot and private alike).
    pub write_frac: f64,
    /// Mean same-page run length.
    pub run_len: u32,
    /// Mean intra-burst compute cycles between memory instructions at 1x.
    pub compute_mean: Cycle,
    /// Data-cache hit probability.
    pub cache_hit: f64,
    /// GPU count the window homing assumes.
    pub gpu_hint: usize,
}

/// The default burst spec: four 64-page windows hit by 512 CTAs in dense
/// bursts, read-mostly. The 1x spacing (`compute_mean`) is deliberately
/// large against typical translation latency so the baseline is
/// compute-bound: the load multiplier then genuinely moves the arrival
/// rate instead of compressing gaps that were already negligible.
pub fn burst() -> Burst {
    Burst {
        bursts: 4,
        burst_accesses: 64,
        idle_gap: 4_000,
        window_pages: 64,
        private_pages: 8,
        ctas: 512,
        offered_load: 1,
        p_hot: 0.7,
        write_frac: 0.2,
        run_len: 4,
        compute_mean: 2_000,
        cache_hit: 0.4,
        gpu_hint: 4,
    }
}

impl Burst {
    /// Scales work (CTAs and per-burst accesses) by `factor`; footprint and
    /// mix are unchanged — the same floors as
    /// [`AppSpec::scaled`](crate::AppSpec).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> Burst {
        assert!(factor > 0.0, "factor must be positive");
        Burst {
            ctas: ((self.ctas as f64 * factor) as usize).max(4),
            burst_accesses: ((self.burst_accesses as f64 * factor) as usize).max(8),
            ..self.clone()
        }
    }

    /// Returns the spec with the offered-load multiplier set to `mult`
    /// (clamped to at least 1): the knob the overload sweep turns.
    pub fn with_load(&self, mult: u64) -> Burst {
        Burst {
            offered_load: mult.max(1),
            ..self.clone()
        }
    }

    fn accesses_per_cta(&self) -> usize {
        self.bursts * self.burst_accesses
    }

    fn hot_pages(&self) -> u64 {
        self.bursts as u64 * self.window_pages
    }
}

impl Workload for Burst {
    fn name(&self) -> &str {
        "Burst"
    }

    fn footprint_pages(&self) -> u64 {
        self.hot_pages() + self.ctas as u64 * self.private_pages
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        Box::new(BurstStream {
            spec: self.clone(),
            cta,
            rng: SimRng::new(seed ^ 0xB0B5_7E11u64.wrapping_mul(cta as u64 + 1)),
            issued: 0,
            run_left: 0,
            run_vpn: 0,
            cursor: 0,
        })
    }

    fn data_cache_hit_rate(&self) -> f64 {
        self.cache_hit
    }

    /// Window `b` starts on GPU `b mod gpus`; private pages sit with their
    /// CTA's GPU.
    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        let hot = self.hot_pages();
        if vpn < hot {
            Some(((vpn / self.window_pages) % u64::from(gpus)) as u16)
        } else {
            let cta = ((vpn - hot) / self.private_pages.max(1)).min(self.ctas as u64 - 1);
            Some((cta as usize * gpus as usize / self.ctas) as u16)
        }
    }
}

/// Lazily generated access stream for one CTA of a [`Burst`].
#[derive(Debug)]
struct BurstStream {
    spec: Burst,
    cta: usize,
    rng: SimRng,
    issued: usize,
    run_left: u32,
    run_vpn: u64,
    /// Sequential sweep position within the private partition.
    cursor: u64,
}

impl BurstStream {
    fn current_burst(&self) -> usize {
        (self.issued / self.spec.burst_accesses.max(1)).min(self.spec.bursts - 1)
    }

    fn start_run(&mut self) {
        let s = &self.spec;
        self.run_vpn = if self.rng.chance(s.p_hot) {
            let window = self.current_burst() as u64 * s.window_pages;
            window + self.rng.gen_range(s.window_pages.max(1))
        } else {
            let base = s.hot_pages() + self.cta as u64 * s.private_pages;
            let vpn = base + (self.cursor % s.private_pages.max(1));
            self.cursor += 1;
            vpn
        };
        let max_run = u64::from((2 * s.run_len).max(1));
        self.run_left = (1 + self.rng.gen_range(max_run)) as u32;
    }
}

impl AccessStream for BurstStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.issued >= self.spec.accesses_per_cta() {
            return None;
        }
        if self.run_left == 0 {
            self.start_run();
        }
        self.run_left -= 1;
        // The idle gap lands on the first access of each burst after the
        // first, so a burst is dense from its very first instruction.
        let boundary =
            self.issued > 0 && self.issued.is_multiple_of(self.spec.burst_accesses.max(1));
        self.issued += 1;
        let gap =
            self.spec.compute_mean / 2 + self.rng.gen_range(self.spec.compute_mean.max(1));
        let mut compute = (gap / self.spec.offered_load.max(1)).max(1);
        if boundary {
            compute += self.spec.idle_gap;
        }
        Some(Access {
            vpn: self.run_vpn,
            is_write: self.rng.chance(self.spec.write_frac),
            compute,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_length_matches_spec() {
        let spec = burst().scaled(0.05);
        let mut s = spec.make_stream(0, 1);
        let mut n = 0;
        while s.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, spec.accesses_per_cta());
    }

    #[test]
    fn streams_are_deterministic() {
        let spec = burst().scaled(0.1).with_load(4);
        let collect = |seed| {
            let mut s = spec.make_stream(3, seed);
            let mut v = Vec::new();
            while let Some(x) = s.next_access() {
                v.push((x.vpn, x.is_write, x.compute));
            }
            v
        };
        assert_eq!(collect(42), collect(42));
    }

    #[test]
    fn streams_stay_in_footprint() {
        let spec = burst().scaled(0.1);
        for cta in [0, spec.ctas / 2, spec.ctas - 1] {
            let mut s = spec.make_stream(cta, 7);
            while let Some(x) = s.next_access() {
                assert!(x.vpn < spec.footprint_pages(), "cta {cta} vpn {}", x.vpn);
            }
        }
    }

    #[test]
    fn offered_load_compresses_compute_gaps() {
        // Same access train, same RNG stream: the 8x run must issue the
        // same pages strictly faster (smaller total compute) than the 1x.
        let base = burst().scaled(0.1);
        let fast = base.with_load(8);
        let total = |spec: &Burst| {
            let mut s = spec.make_stream(0, 9);
            let mut pages = Vec::new();
            let mut compute = 0u64;
            while let Some(x) = s.next_access() {
                pages.push(x.vpn);
                compute += x.compute;
            }
            (pages, compute)
        };
        let (p1, c1) = total(&base);
        let (p8, c8) = total(&fast);
        assert_eq!(p1, p8, "load multiplier must not change the access train");
        assert!(c8 < c1, "8x load should compress compute ({c8} !< {c1})");
    }

    #[test]
    fn hot_window_rotates_with_the_burst() {
        let spec = burst();
        let mut s = spec.make_stream(0, 11);
        let mut windows = vec![std::collections::HashSet::new(); spec.bursts];
        for i in 0..spec.accesses_per_cta() {
            let a = s.next_access().unwrap();
            if a.vpn < spec.hot_pages() {
                windows[i / spec.burst_accesses].insert(a.vpn / spec.window_pages);
            }
        }
        for (b, ws) in windows.iter().enumerate() {
            // A same-page run may bleed a few accesses across the boundary.
            assert!(
                ws.iter().all(|&w| w as usize == b || w as usize + 1 == b),
                "burst {b} touched windows {ws:?}"
            );
        }
    }

    #[test]
    fn windows_start_on_rotating_gpus() {
        let spec = burst();
        let w = spec.window_pages;
        assert_eq!(spec.initial_owner(0, 4), Some(0));
        assert_eq!(spec.initial_owner(w, 4), Some(1));
        assert_eq!(spec.initial_owner(3 * w + w / 2, 4), Some(3));
    }

    #[test]
    fn burst_runs_under_every_policy() {
        use mgpu::{System, SystemConfig};
        let spec = burst().scaled(0.01).with_load(4);
        for kind in [
            uvm::PolicyKind::FirstTouch,
            uvm::PolicyKind::DelayedMigration { threshold: 2 },
            uvm::PolicyKind::ReadDuplicate,
            uvm::PolicyKind::PrefetchNeighborhood { radius: 3 },
        ] {
            let cfg = SystemConfig::builder()
                .gpus(4)
                .cus_per_gpu(2)
                .seed(5)
                .placement(Some(kind))
                .build();
            let m = System::new(cfg).run(&spec).unwrap_or_else(|e| {
                panic!("{} failed under {:?}: {e}", spec.name(), kind)
            });
            assert!(m.total_cycles > 0);
        }
    }
}
