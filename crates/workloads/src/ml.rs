//! Real-model workloads for the §V-J study: VGG16 and ResNet18 in
//! data-parallel training.
//!
//! Under data parallelism each GPU processes its own minibatch shard
//! (private activations) while *sharing the model*: every GPU reads the
//! same weight pages each layer, and the backward pass writes shared
//! gradient pages — exactly the read-shared/write-shared page traffic that
//! stresses multi-GPU UVM translation.

use mgpu::workload::{Access, AccessStream, Workload};
use sim_core::{Cycle, SimRng};

/// One layer: weight footprint, per-CTA activation footprint and compute
/// intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layer {
    /// Weight pages (shared, read in forward and backward).
    pub weight_pages: u64,
    /// Activation pages per CTA (private).
    pub act_pages: u64,
    /// Mean compute cycles between memory instructions in this layer.
    pub compute: Cycle,
}

/// A data-parallel training workload over a layered model.
///
/// # Examples
///
/// ```
/// use workloads::vgg16;
/// use mgpu::workload::Workload;
///
/// let m = vgg16();
/// assert_eq!(m.name(), "VGG16");
/// assert!(m.footprint_pages() > 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlModel {
    /// Model name.
    pub name: String,
    /// The layer stack.
    pub layers: Vec<Layer>,
    /// CTAs (shards × layer tiles).
    pub ctas: usize,
    /// Memory instructions per layer per CTA.
    pub accesses_per_layer: usize,
    /// Data-cache hit rate (GEMMs are cache-friendly).
    pub cache_hit: f64,
}

impl MlModel {
    fn weight_total(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_pages).sum()
    }

    fn act_per_cta(&self) -> u64 {
        self.layers.iter().map(|l| l.act_pages).sum::<u64>().max(1)
    }

    /// Scales per-CTA work for quick tests; model geometry is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> MlModel {
        assert!(factor > 0.0, "factor must be positive");
        MlModel {
            ctas: ((self.ctas as f64 * factor) as usize).max(4),
            accesses_per_layer: ((self.accesses_per_layer as f64 * factor) as usize).max(4),
            ..self.clone()
        }
    }
}

impl Workload for MlModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_pages(&self) -> u64 {
        // [weights | gradients | per-CTA activations…]
        2 * self.weight_total() + self.ctas as u64 * self.act_per_cta()
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        Box::new(MlStream {
            model: self.clone(),
            cta,
            rng: SimRng::new(seed ^ 0x31A7_EB0Du64.wrapping_mul(cta as u64 + 1)),
            layer: 0,
            backward: false,
            issued_in_layer: 0,
            run_left: 0,
            run_vpn: 0,
            run_write: false,
        })
    }

    fn data_cache_hit_rate(&self) -> f64 {
        self.cache_hit
    }

    /// Warm placement: weights and gradients (shared) are striped across
    /// GPUs; activations sit on the GPU running their CTA.
    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        let shared = 2 * self.weight_total();
        if vpn < shared {
            Some(((vpn / 8) % u64::from(gpus)) as u16)
        } else {
            let cta = ((vpn - shared) / self.act_per_cta()).min(self.ctas as u64 - 1) as usize;
            Some((cta * gpus as usize / self.ctas) as u16)
        }
    }
}

#[derive(Debug)]
struct MlStream {
    model: MlModel,
    cta: usize,
    rng: SimRng,
    layer: usize,
    backward: bool,
    issued_in_layer: usize,
    run_left: u32,
    run_vpn: u64,
    run_write: bool,
}

impl MlStream {
    fn start_run(&mut self) {
        let m = &self.model;
        let l = &m.layers[if self.backward {
            m.layers.len() - 1 - self.layer
        } else {
            self.layer
        }];
        let weight_base: u64 = m.layers[..if self.backward {
            m.layers.len() - 1 - self.layer
        } else {
            self.layer
        }]
            .iter()
            .map(|x| x.weight_pages)
            .sum();
        let grad_base = m.weight_total() + weight_base;
        let act_base = 2 * m.weight_total() + self.cta as u64 * m.act_per_cta();

        let r = self.rng.gen_f64();
        let (vpn, write) = if self.backward && r < 0.12 {
            // Gradient write (shared).
            (grad_base + self.rng.gen_range(l.weight_pages.max(1)), true)
        } else if r < 0.3 {
            // Weight read (shared): GEMMs stream a tile many times.
            (weight_base + self.rng.gen_range(l.weight_pages.max(1)), false)
        } else {
            // Private activation read/write.
            (
                act_base + self.rng.gen_range(l.act_pages.max(1)),
                self.rng.chance(0.4),
            )
        };
        self.run_vpn = vpn;
        self.run_write = write;
        self.run_left = 4 + self.rng.gen_range(20) as u32;
    }
}

impl AccessStream for MlStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.layer >= self.model.layers.len() {
            if self.backward {
                return None; // forward + backward complete
            }
            self.backward = true;
            self.layer = 0;
            self.issued_in_layer = 0;
        }
        if self.issued_in_layer >= self.model.accesses_per_layer {
            self.layer += 1;
            self.issued_in_layer = 0;
            self.run_left = 0;
            return self.next_access();
        }
        if self.run_left == 0 {
            self.start_run();
        }
        self.run_left -= 1;
        self.issued_in_layer += 1;
        let idx = if self.backward {
            self.model.layers.len() - 1 - self.layer
        } else {
            self.layer
        };
        let mean = self.model.layers[idx].compute;
        let compute = mean / 2 + self.rng.gen_range(mean.max(1));
        Some(Access {
            vpn: self.run_vpn,
            is_write: self.run_write,
            compute,
        })
    }
}

/// VGG16 (13 conv + 3 FC layers; FC weights dominate), scaled to a
/// simulation-friendly footprint with the real layers' proportions.
pub fn vgg16() -> MlModel {
    let conv = |w: u64| Layer {
        weight_pages: w,
        act_pages: 3,
        compute: 180,
    };
    let fc = |w: u64| Layer {
        weight_pages: w,
        act_pages: 1,
        compute: 90,
    };
    MlModel {
        name: "VGG16".into(),
        layers: vec![
            conv(2),
            conv(4),
            conv(8),
            conv(16),
            conv(32),
            conv(32),
            conv(64),
            conv(64),
            conv(64),
            conv(64),
            conv(64),
            conv(64),
            conv(64),
            fc(1600), // fc6 holds ~74% of VGG16's parameters
            fc(260),
            fc(64),
        ],
        ctas: 768,
        accesses_per_layer: 12,
        cache_hit: 0.6,
    }
}

/// ResNet18 (8 residual blocks + stem and classifier), same scaling rule.
pub fn resnet18() -> MlModel {
    let block = |w: u64| Layer {
        weight_pages: w,
        act_pages: 2,
        compute: 120,
    };
    MlModel {
        name: "ResNet18".into(),
        layers: vec![
            block(3), // stem
            block(18),
            block(18),
            block(36),
            block(72),
            block(72),
            block(144),
            block(288),
            block(288),
            block(13), // classifier
        ],
        ctas: 768,
        accesses_per_layer: 16,
        cache_hit: 0.55,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_have_sane_geometry() {
        for m in [vgg16(), resnet18()] {
            assert!(m.weight_total() > 100, "{}", m.name);
            assert!(m.footprint_pages() > m.weight_total() * 2);
            assert!(m.cta_count() > 0);
        }
    }

    #[test]
    fn stream_visits_forward_and_backward() {
        let m = vgg16().scaled(0.2);
        let mut s = m.make_stream(0, 1);
        let mut n = 0u64;
        let mut writes = 0u64;
        while let Some(a) = s.next_access() {
            n += 1;
            if a.is_write {
                writes += 1;
            }
            assert!(a.vpn < m.footprint_pages());
        }
        // forward + backward over all layers
        assert_eq!(n as usize, 2 * m.layers.len() * m.accesses_per_layer);
        assert!(writes > 0, "backward pass must write gradients");
    }

    #[test]
    fn weights_are_shared_across_ctas() {
        let m = resnet18();
        let weight_region = m.weight_total();
        let touched_weights = |cta: usize| {
            let mut s = m.make_stream(cta, 2);
            let mut v = std::collections::HashSet::new();
            while let Some(a) = s.next_access() {
                if a.vpn < weight_region {
                    v.insert(a.vpn);
                }
            }
            v
        };
        let a = touched_weights(0);
        let b = touched_weights(700);
        assert!(
            a.intersection(&b).count() > 0,
            "distant CTAs must share weight pages"
        );
    }

    #[test]
    fn activations_are_private() {
        let m = resnet18();
        let act_region = 2 * m.weight_total();
        let touched_acts = |cta: usize| {
            let mut s = m.make_stream(cta, 2);
            let mut v = std::collections::HashSet::new();
            while let Some(a) = s.next_access() {
                if a.vpn >= act_region {
                    v.insert(a.vpn);
                }
            }
            v
        };
        let a = touched_acts(0);
        let b = touched_acts(700);
        assert_eq!(a.intersection(&b).count(), 0, "activations must not overlap");
    }

    #[test]
    fn deterministic_streams() {
        let m = vgg16().scaled(0.1);
        let run = |seed| {
            let mut s = m.make_stream(5, seed);
            let mut v = Vec::new();
            while let Some(a) = s.next_access() {
                v.push((a.vpn, a.is_write));
            }
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_nonpositive() {
        let _ = vgg16().scaled(-1.0);
    }
}
