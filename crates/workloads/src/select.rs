//! Declarative workload selection: a plain-data description of *which*
//! workload to run, with its parameters.
//!
//! Every experiment surface in the repo — the hard-coded soak bins, the
//! `.scn` scenario compiler and the `scnd` experiment server — describes a
//! workload the same way: a [`WorkloadSpec`] value. The spec is pure data
//! (`Clone + PartialEq`, no trait objects), so scenario IRs can compare and
//! digest it; [`WorkloadSpec::build`] is the single place a spec becomes a
//! runnable [`Workload`].
//!
//! # Examples
//!
//! ```
//! use workloads::WorkloadSpec;
//! use mgpu::workload::Workload;
//!
//! let spec = WorkloadSpec::app("KM", 0.1).expect("known app");
//! assert_eq!(spec.build().name(), "KM");
//! let burst = WorkloadSpec::Burst { scale: 0.1, load: 4 };
//! assert_eq!(burst.label(), "burst@4x");
//! ```

use crate::spec::Pattern;
use crate::AppSpec;
use mgpu::workload::Workload;

/// Which workload to run, with its parameters. The four families cover the
/// whole experiment surface: the Table III applications (closed-loop),
/// a uniform-random synthetic, the phase-shifting and bursty open-loop
/// generators, and the working-set-shift oversubscription stressor.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the ten Table III applications, by abbreviation.
    App {
        /// Table III abbreviation (e.g. `"KM"`); must name a known app.
        name: String,
        /// Work scale factor (1.0 = full scale).
        scale: f64,
    },
    /// Uniform-random accesses over a fully shared footprint: every CTA
    /// draws pages from one global region, the worst case for placement.
    Uniform {
        /// Total 4 KB pages in the shared footprint.
        pages: u64,
        /// Number of CTAs before scaling.
        ctas: usize,
        /// Memory instructions per CTA before scaling.
        accesses_per_cta: usize,
        /// Write probability.
        write_frac: f64,
        /// Work scale factor applied to CTAs and accesses.
        scale: f64,
    },
    /// The phase-shifting workload (`workloads::phase_shift`): the hot
    /// window moves between GPUs mid-run.
    PhaseShift {
        /// Work scale factor.
        scale: f64,
    },
    /// The bursty open-loop workload (`workloads::burst`) at an offered
    /// load multiplier.
    Burst {
        /// Work scale factor.
        scale: f64,
        /// Offered-load multiplier (clamped to at least 1 when built).
        load: u64,
    },
    /// The working-set-shift oversubscription workload
    /// (`workloads::oversub_shift`).
    OversubShift {
        /// Work scale factor.
        scale: f64,
    },
}

impl WorkloadSpec {
    /// Spec for a Table III application, or `None` for an unknown name
    /// (the stored name is canonicalised to the Table III spelling).
    pub fn app(name: &str, scale: f64) -> Option<Self> {
        crate::app(name).map(|a| WorkloadSpec::App {
            name: a.name,
            scale,
        })
    }

    /// The spec's work scale factor.
    pub fn scale(&self) -> f64 {
        match *self {
            WorkloadSpec::App { scale, .. }
            | WorkloadSpec::Uniform { scale, .. }
            | WorkloadSpec::PhaseShift { scale }
            | WorkloadSpec::Burst { scale, .. }
            | WorkloadSpec::OversubShift { scale } => scale,
        }
    }

    /// The same spec at a different work scale (the CLI override knob the
    /// experiment bins expose).
    pub fn with_scale(&self, scale: f64) -> Self {
        let mut s = self.clone();
        match &mut s {
            WorkloadSpec::App { scale: x, .. }
            | WorkloadSpec::Uniform { scale: x, .. }
            | WorkloadSpec::PhaseShift { scale: x }
            | WorkloadSpec::Burst { scale: x, .. }
            | WorkloadSpec::OversubShift { scale: x } => *x = scale,
        }
        s
    }

    /// Short label for sweep-cell reports (workload name plus the knobs
    /// that distinguish cells, excluding scale).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::App { name, .. } => name.clone(),
            WorkloadSpec::Uniform { pages, .. } => format!("uniform/{pages}p"),
            WorkloadSpec::PhaseShift { .. } => "PhaseShift".into(),
            WorkloadSpec::Burst { load, .. } => format!("burst@{load}x"),
            WorkloadSpec::OversubShift { .. } => "OversubShift".into(),
        }
    }

    /// Whether the spec is buildable: [`WorkloadSpec::App`] must name a
    /// known Table III application and every scale must be positive.
    pub fn is_valid(&self) -> bool {
        if self.scale() <= 0.0 {
            return false;
        }
        match self {
            WorkloadSpec::App { name, .. } => crate::app(name).is_some(),
            WorkloadSpec::Uniform {
                pages,
                ctas,
                accesses_per_cta,
                write_frac,
                ..
            } => {
                *pages > 0
                    && *ctas > 0
                    && *accesses_per_cta > 0
                    && (0.0..=1.0).contains(write_frac)
            }
            WorkloadSpec::PhaseShift { .. }
            | WorkloadSpec::Burst { .. }
            | WorkloadSpec::OversubShift { .. } => true,
        }
    }

    /// Builds the runnable workload.
    ///
    /// # Panics
    ///
    /// Panics if the spec is not [valid](Self::is_valid) — the scenario
    /// compiler and the experiments `RunSpec` builder validate before
    /// building, so a panic here means a constructed-by-hand spec skipped
    /// validation.
    pub fn build(&self) -> Box<dyn Workload> {
        assert!(self.is_valid(), "invalid workload spec: {self:?}");
        match self {
            WorkloadSpec::App { name, scale } => Box::new(
                crate::app(name)
                    .unwrap_or_else(|| panic!("unknown app {name}"))
                    .scaled(*scale),
            ),
            WorkloadSpec::Uniform {
                pages,
                ctas,
                accesses_per_cta,
                write_frac,
                scale,
            } => Box::new(
                uniform_spec(*pages, *ctas, *accesses_per_cta, *write_frac).scaled(*scale),
            ),
            WorkloadSpec::PhaseShift { scale } => Box::new(crate::phase_shift().scaled(*scale)),
            WorkloadSpec::Burst { scale, load } => {
                Box::new(crate::burst().scaled(*scale).with_load(*load))
            }
            WorkloadSpec::OversubShift { scale } => {
                Box::new(crate::oversub_shift().scaled(*scale))
            }
        }
    }

    /// Pages the built workload touches (for capacity sizing without
    /// building it twice).
    pub fn footprint_pages(&self) -> u64 {
        self.build().footprint_pages()
    }
}

/// The uniform-random synthetic as an [`AppSpec`]: one fully shared region,
/// every run targets it, run length 1 (no spatial locality to exploit).
fn uniform_spec(pages: u64, ctas: usize, accesses_per_cta: usize, write_frac: f64) -> AppSpec {
    AppSpec {
        name: "Uniform".into(),
        pattern: Pattern::Random,
        footprint: pages,
        shared_frac: 1.0,
        ctas,
        accesses_per_cta,
        p_shared: 1.0,
        p_halo: 0.0,
        run_len: 1,
        write_frac_private: write_frac,
        write_frac_shared: write_frac,
        compute_mean: 30,
        cache_hit: 0.4,
        pair_halo: false,
        gpu_hint: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_lookup_canonicalises_and_rejects_unknown() {
        let s = WorkloadSpec::app("km", 0.5).unwrap();
        assert_eq!(s.label(), "KM");
        assert!(WorkloadSpec::app("nope", 0.5).is_none());
    }

    #[test]
    fn build_matches_direct_constructors() {
        let direct = crate::app("PR").unwrap().scaled(0.25);
        let via_spec = WorkloadSpec::app("PR", 0.25).unwrap().build();
        assert_eq!(via_spec.name(), direct.name());
        assert_eq!(via_spec.footprint_pages(), direct.footprint_pages());
        assert_eq!(via_spec.cta_count(), direct.cta_count());
    }

    #[test]
    fn with_scale_replaces_every_variant() {
        let specs = [
            WorkloadSpec::app("MT", 1.0).unwrap(),
            WorkloadSpec::PhaseShift { scale: 1.0 },
            WorkloadSpec::Burst { scale: 1.0, load: 8 },
            WorkloadSpec::OversubShift { scale: 1.0 },
            WorkloadSpec::Uniform {
                pages: 128,
                ctas: 32,
                accesses_per_cta: 16,
                write_frac: 0.2,
                scale: 1.0,
            },
        ];
        for s in specs {
            assert_eq!(s.with_scale(0.05).scale(), 0.05, "{s:?}");
        }
    }

    #[test]
    fn uniform_streams_cover_the_footprint_only() {
        let spec = WorkloadSpec::Uniform {
            pages: 64,
            ctas: 8,
            accesses_per_cta: 200,
            write_frac: 0.3,
            scale: 1.0,
        };
        let w = spec.build();
        assert_eq!(w.footprint_pages(), 64);
        let mut s = w.make_stream(0, 7);
        while let Some(a) = s.next_access() {
            assert!(a.vpn < 64);
        }
    }

    #[test]
    fn validity_checks() {
        assert!(!WorkloadSpec::App { name: "nope".into(), scale: 1.0 }.is_valid());
        assert!(!WorkloadSpec::PhaseShift { scale: 0.0 }.is_valid());
        assert!(WorkloadSpec::Burst { scale: 0.1, load: 1 }.is_valid());
        assert!(!WorkloadSpec::Uniform {
            pages: 0,
            ctas: 1,
            accesses_per_cta: 1,
            write_frac: 0.5,
            scale: 1.0
        }
        .is_valid());
    }

    #[test]
    fn labels_distinguish_cells() {
        assert_eq!(WorkloadSpec::Burst { scale: 0.1, load: 2 }.label(), "burst@2x");
        assert_eq!(WorkloadSpec::PhaseShift { scale: 0.1 }.label(), "PhaseShift");
    }
}
