//! A phase-shifting access pattern that moves the hot GPU mid-run.
//!
//! The footprint opens with `phases` equal hot windows, window `p` initially
//! homed on GPU `p mod gpus` (via [`Workload::initial_owner`]); the rest is
//! partitioned privately among CTAs. Each CTA's stream is cut into `phases`
//! segments and in segment `p` its non-private accesses hammer window `p`:
//! every GPU except the window's initial owner far-faults on it, and when
//! the phase flips the whole hot set goes cold and a *different* GPU's pages
//! become the contended ones.
//!
//! This is the adversarial input for the placement policies: `FirstTouch`
//! pins each window wherever the first fault lands, `DelayedMigration`
//! re-homes it once the fault count crosses the threshold (then pays again
//! at the next phase), `ReadDuplicate` fans read-mostly windows out to every
//! consumer, and `PrefetchNeighborhood` pulls the spatially-adjacent window
//! pages in on the first fault of a phase.

use mgpu::workload::{Access, AccessStream, Workload};
use sim_core::{Cycle, SimRng};

/// Phase-shifting workload: the hot window (and therefore the GPU whose
/// memory is contended) changes between phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShift {
    /// Number of hot-window phases the run sweeps through.
    pub phases: usize,
    /// Pages per hot window.
    pub window_pages: u64,
    /// Private pages per CTA (sequential sweep).
    pub private_pages: u64,
    /// Number of CTAs.
    pub ctas: usize,
    /// Memory instructions per CTA.
    pub accesses_per_cta: usize,
    /// Probability an access targets the current hot window.
    pub p_hot: f64,
    /// Write probability inside the hot window.
    pub write_frac_hot: f64,
    /// Write probability in the private partition.
    pub write_frac_private: f64,
    /// Mean same-page run length.
    pub run_len: u32,
    /// Mean compute cycles between memory instructions.
    pub compute_mean: Cycle,
    /// Data-cache hit probability.
    pub cache_hit: f64,
    /// GPU count the window homing assumes.
    pub gpu_hint: usize,
}

/// The default phase-shifting spec: four phases over four 96-page windows,
/// read-mostly in the hot set so every policy has something to exploit.
pub fn phase_shift() -> PhaseShift {
    PhaseShift {
        phases: 4,
        window_pages: 96,
        private_pages: 12,
        ctas: 1024,
        accesses_per_cta: 200,
        p_hot: 0.6,
        write_frac_hot: 0.1,
        write_frac_private: 0.3,
        run_len: 6,
        compute_mean: 30,
        cache_hit: 0.45,
        gpu_hint: 4,
    }
}

impl PhaseShift {
    /// Scales work (CTAs and accesses) by `factor`; footprint and mix are
    /// unchanged — the same floors as [`AppSpec::scaled`](crate::AppSpec).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> PhaseShift {
        assert!(factor > 0.0, "factor must be positive");
        PhaseShift {
            ctas: ((self.ctas as f64 * factor) as usize).max(4),
            accesses_per_cta: ((self.accesses_per_cta as f64 * factor) as usize).max(8),
            ..self.clone()
        }
    }

    fn hot_pages(&self) -> u64 {
        self.phases as u64 * self.window_pages
    }
}

impl Workload for PhaseShift {
    fn name(&self) -> &str {
        "PhaseShift"
    }

    fn footprint_pages(&self) -> u64 {
        self.hot_pages() + self.ctas as u64 * self.private_pages
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        Box::new(PhaseStream {
            spec: self.clone(),
            cta,
            rng: SimRng::new(seed ^ 0x9A5E_5F17u64.wrapping_mul(cta as u64 + 1)),
            issued: 0,
            run_left: 0,
            run_vpn: 0,
            run_write_p: 0.0,
            cursor: 0,
        })
    }

    fn data_cache_hit_rate(&self) -> f64 {
        self.cache_hit
    }

    /// Window `p` starts on GPU `p mod gpus` (a previous kernel produced it
    /// there); private pages sit with their CTA's GPU.
    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        let hot = self.hot_pages();
        if vpn < hot {
            Some(((vpn / self.window_pages) % u64::from(gpus)) as u16)
        } else {
            let cta = ((vpn - hot) / self.private_pages.max(1)).min(self.ctas as u64 - 1);
            Some((cta as usize * gpus as usize / self.ctas) as u16)
        }
    }
}

/// Lazily generated access stream for one CTA of a [`PhaseShift`].
#[derive(Debug)]
struct PhaseStream {
    spec: PhaseShift,
    cta: usize,
    rng: SimRng,
    issued: usize,
    run_left: u32,
    run_vpn: u64,
    run_write_p: f64,
    /// Sequential sweep position within the private partition.
    cursor: u64,
}

impl PhaseStream {
    fn current_phase(&self) -> usize {
        (self.issued * self.spec.phases / self.spec.accesses_per_cta.max(1))
            .min(self.spec.phases - 1)
    }

    fn start_run(&mut self) {
        let s = &self.spec;
        let (vpn, write_p) = if self.rng.chance(s.p_hot) {
            let window = self.current_phase() as u64 * s.window_pages;
            (
                window + self.rng.gen_range(s.window_pages.max(1)),
                s.write_frac_hot,
            )
        } else {
            let base = s.hot_pages() + self.cta as u64 * s.private_pages;
            let vpn = base + (self.cursor % s.private_pages.max(1));
            self.cursor += 1;
            (vpn, s.write_frac_private)
        };
        self.run_vpn = vpn;
        self.run_write_p = write_p;
        let max_run = u64::from((2 * s.run_len).max(1));
        self.run_left = (1 + self.rng.gen_range(max_run)) as u32;
    }
}

impl AccessStream for PhaseStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.issued >= self.spec.accesses_per_cta {
            return None;
        }
        if self.run_left == 0 {
            self.start_run();
        }
        self.run_left -= 1;
        self.issued += 1;
        let compute = self.spec.compute_mean / 2
            + self.rng.gen_range(self.spec.compute_mean.max(1));
        Some(Access {
            vpn: self.run_vpn,
            is_write: self.rng.chance(self.run_write_p),
            compute,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_length_matches_spec() {
        let spec = phase_shift().scaled(0.05);
        let mut s = spec.make_stream(0, 1);
        let mut n = 0;
        while s.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, spec.accesses_per_cta);
    }

    #[test]
    fn streams_are_deterministic() {
        let spec = phase_shift().scaled(0.1);
        let collect = |seed| {
            let mut s = spec.make_stream(3, seed);
            let mut v = Vec::new();
            while let Some(x) = s.next_access() {
                v.push((x.vpn, x.is_write, x.compute));
            }
            v
        };
        assert_eq!(collect(42), collect(42));
    }

    #[test]
    fn streams_stay_in_footprint() {
        let spec = phase_shift().scaled(0.1);
        for cta in [0, spec.ctas / 2, spec.ctas - 1] {
            let mut s = spec.make_stream(cta, 7);
            while let Some(x) = s.next_access() {
                assert!(x.vpn < spec.footprint_pages(), "cta {cta} vpn {}", x.vpn);
            }
        }
    }

    #[test]
    fn hot_window_advances_with_the_phase() {
        // The first quarter of the stream must hit window 0, the last
        // quarter window `phases - 1`.
        let spec = phase_shift();
        let mut s = spec.make_stream(0, 11);
        let mut hot_by_quarter = vec![std::collections::HashSet::new(); spec.phases];
        for i in 0..spec.accesses_per_cta {
            let a = s.next_access().unwrap();
            if a.vpn < spec.hot_pages() {
                hot_by_quarter[i * spec.phases / spec.accesses_per_cta].insert(
                    a.vpn / spec.window_pages,
                );
            }
        }
        for (q, windows) in hot_by_quarter.iter().enumerate() {
            // A same-page run started at the end of quarter q - 1 may bleed
            // a few accesses across the boundary; anything else is a bug.
            assert!(
                windows.iter().all(|&w| w as usize == q || w as usize + 1 == q),
                "quarter {q} touched windows {windows:?}"
            );
        }
    }

    #[test]
    fn windows_start_on_rotating_gpus() {
        let spec = phase_shift();
        let w = spec.window_pages;
        assert_eq!(spec.initial_owner(0, 4), Some(0));
        assert_eq!(spec.initial_owner(w, 4), Some(1));
        assert_eq!(spec.initial_owner(2 * w, 4), Some(2));
        assert_eq!(spec.initial_owner(3 * w + w / 2, 4), Some(3));
    }

    #[test]
    fn phase_shift_runs_under_every_policy() {
        use mgpu::{System, SystemConfig};
        let spec = phase_shift().scaled(0.01);
        for kind in [
            uvm::PolicyKind::FirstTouch,
            uvm::PolicyKind::DelayedMigration { threshold: 2 },
            uvm::PolicyKind::ReadDuplicate,
            uvm::PolicyKind::PrefetchNeighborhood { radius: 3 },
        ] {
            let cfg = SystemConfig::builder()
                .gpus(4)
                .cus_per_gpu(2)
                .seed(5)
                .placement(Some(kind))
                .build();
            let m = System::new(cfg).run(&spec).unwrap_or_else(|e| {
                panic!("{} failed under {:?}: {e}", spec.name(), kind)
            });
            assert!(m.total_cycles > 0);
        }
    }
}
