//! Parameterised application specifications and their stream generator.

use mgpu::workload::{Access, AccessStream, Workload};
use sim_core::{Cycle, SimRng};

/// Cross-GPU data access pattern (the Table III classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Each GPU works on its own partition (AES).
    Partition,
    /// Partitions plus neighbour halos and possibly a shared input
    /// (FIR, KM, SC, ST, Conv2d).
    Adjacent,
    /// Uniform random over the footprint (PR).
    Random,
    /// Strided/transposed accesses into a region every GPU touches
    /// (MM, MT, Im2col).
    ScatterGather,
}

/// A synthetic application: footprint layout, access mix and intensity.
///
/// The footprint is laid out as `[shared region | CTA partitions…]`; each
/// access goes to the CTA's private partition (sequential sweep), a
/// neighbour's boundary pages (halo) or the shared region, with per-region
/// write probabilities. Consecutive accesses are grouped in same-page runs
/// to model coalescing and spatial locality.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Table III abbreviation.
    pub name: String,
    /// Access-pattern class.
    pub pattern: Pattern,
    /// Total 4 KB pages.
    pub footprint: u64,
    /// Fraction of the footprint in the globally shared region.
    pub shared_frac: f64,
    /// Number of CTAs.
    pub ctas: usize,
    /// Memory instructions per CTA.
    pub accesses_per_cta: usize,
    /// Probability a run targets the shared region.
    pub p_shared: f64,
    /// Probability a run targets a neighbour's halo pages.
    pub p_halo: f64,
    /// Mean same-page run length.
    pub run_len: u32,
    /// Write probability for private/halo accesses.
    pub write_frac_private: f64,
    /// Write probability for shared-region accesses.
    pub write_frac_shared: f64,
    /// Mean compute cycles between memory instructions.
    pub compute_mean: Cycle,
    /// Data-cache hit probability.
    pub cache_hit: f64,
    /// When true, the shared region is split into per-GPU-pair ghost zones
    /// (stencil halo exchange): each zone is shared by exactly two
    /// neighbouring GPUs instead of all of them.
    pub pair_halo: bool,
    /// GPU count the pair-halo zoning assumes (the paper's baseline is 4).
    pub gpu_hint: usize,
}

impl AppSpec {
    /// Scales work (CTAs and accesses) by `factor` for quick tests and
    /// benches; footprint and mix are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> AppSpec {
        assert!(factor > 0.0, "factor must be positive");
        AppSpec {
            ctas: ((self.ctas as f64 * factor) as usize).max(4),
            accesses_per_cta: ((self.accesses_per_cta as f64 * factor) as usize).max(8),
            ..self.clone()
        }
    }

    fn shared_pages(&self) -> u64 {
        ((self.footprint as f64 * self.shared_frac) as u64).max(1)
    }

    fn partition_pages(&self) -> u64 {
        ((self.footprint - self.shared_pages()) / self.ctas as u64).max(1)
    }
}

impl Workload for AppSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_pages(&self) -> u64 {
        self.footprint
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        Box::new(SpecStream {
            spec: self.clone(),
            cta,
            rng: SimRng::new(seed ^ 0x5EC5_7811u64.wrapping_mul(cta as u64 + 1)),
            remaining: self.accesses_per_cta,
            cursor: 0,
            run_left: 0,
            run_vpn: 0,
            run_write_p: 0.0,
        })
    }

    fn data_cache_hit_rate(&self) -> f64 {
        self.cache_hit
    }

    /// Warm placement: shared-region pages are striped across the GPUs (a
    /// previous kernel left them wherever it last touched them); partition
    /// pages sit on the GPU that owns the CTA range.
    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        let shared = self.shared_pages();
        if vpn < shared {
            Some(((vpn / 8) % u64::from(gpus)) as u16)
        } else {
            let part = self.partition_pages();
            let cta = ((vpn - shared) / part).min(self.ctas as u64 - 1) as usize;
            Some((cta * gpus as usize / self.ctas) as u16)
        }
    }
}

/// Lazily generated access stream for one CTA of an [`AppSpec`].
#[derive(Debug)]
struct SpecStream {
    spec: AppSpec,
    cta: usize,
    rng: SimRng,
    remaining: usize,
    /// Sequential sweep position within the private partition.
    cursor: u64,
    run_left: u32,
    run_vpn: u64,
    run_write_p: f64,
}

impl SpecStream {
    fn start_run(&mut self) {
        let s = &self.spec;
        let shared = s.shared_pages();
        let part = s.partition_pages();
        let my_base = shared + self.cta as u64 * part;
        let r = self.rng.gen_f64();
        let (vpn, write_p) = if r < s.p_shared {
            let vpn = if s.pair_halo {
                // Stencil ghost zones: zone g is exchanged between GPUs g
                // and g+1 only (degree-2 sharing).
                let zones = s.gpu_hint.max(2) as u64 - 1;
                let zone_len = (shared / zones).max(1);
                let my_gpu = (self.cta * s.gpu_hint / s.ctas.max(1)) as u64;
                let zone = if my_gpu == 0 {
                    0
                } else if my_gpu >= zones {
                    zones - 1
                } else if self.rng.chance(0.5) {
                    my_gpu - 1
                } else {
                    my_gpu
                };
                (zone * zone_len + self.rng.gen_range(zone_len)).min(shared - 1)
            } else {
                match s.pattern {
                    // Adjacent apps re-read a hot shared structure (e.g. KM
                    // centroids); random graphs have power-law hot vertices.
                    Pattern::Adjacent | Pattern::Partition => {
                        self.rng.gen_range((shared / 4).max(1))
                    }
                    Pattern::Random => {
                        if self.rng.chance(0.7) {
                            self.rng.gen_range((shared / 8).max(1))
                        } else {
                            self.rng.gen_range(shared)
                        }
                    }
                    Pattern::ScatterGather => self.rng.gen_range(shared),
                }
            };
            (vpn, s.write_frac_shared)
        } else if r < s.p_shared + s.p_halo && s.ctas > 1 {
            // Neighbour halo: first pages of the next partition or last
            // pages of the previous one.
            let neighbour = if self.rng.chance(0.5) {
                (self.cta + 1) % s.ctas
            } else {
                (self.cta + s.ctas - 1) % s.ctas
            };
            let base = shared + neighbour as u64 * part;
            let width = part.min(2);
            let off = if self.rng.chance(0.5) {
                self.rng.gen_range(width)
            } else {
                part - 1 - self.rng.gen_range(width)
            };
            (base + off, s.write_frac_private)
        } else {
            // Private partition: sequential sweep with wraparound.
            let vpn = my_base + (self.cursor % part);
            self.cursor += 1;
            (vpn, s.write_frac_private)
        };
        self.run_vpn = vpn.min(s.footprint - 1);
        self.run_write_p = write_p;
        let max_run = u64::from((2 * s.run_len).max(1));
        self.run_left = (1 + self.rng.gen_range(max_run)) as u32;
    }
}

impl AccessStream for SpecStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.run_left == 0 {
            self.start_run();
        }
        self.run_left -= 1;
        let compute = self.spec.compute_mean / 2
            + self.rng.gen_range(self.spec.compute_mean.max(1));
        Some(Access {
            vpn: self.run_vpn,
            is_write: self.rng.chance(self.run_write_p),
            compute,
        })
    }
}

// ----- the ten Table III applications ------------------------------------

/// AES-256 encryption (Hetero-Mark): pure partitioning, compute-bound,
/// PFPKI ≈ 0.016.
pub fn aes() -> AppSpec {
    AppSpec {
        name: "AES".into(),
        pattern: Pattern::Partition,
        footprint: 24000,
        shared_frac: 0.0005,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.002,
        p_halo: 0.0,
        run_len: 8,
        write_frac_private: 0.3,
        write_frac_shared: 0.0,
        compute_mean: 160,
        cache_hit: 0.6,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Finite impulse response (Hetero-Mark): adjacent with tiny halos,
/// compute-bound, PFPKI ≈ 0.002.
pub fn fir() -> AppSpec {
    AppSpec {
        name: "FIR".into(),
        pattern: Pattern::Adjacent,
        footprint: 16000,
        shared_frac: 0.0005,
        ctas: 1024,
        accesses_per_cta: 150,
        p_shared: 0.002,
        p_halo: 0.04,
        run_len: 12,
        write_frac_private: 0.1,
        write_frac_shared: 0.0,
        compute_mean: 180,
        cache_hit: 0.7,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// KMeans (Hetero-Mark): every CTA re-reads the shared centroids,
/// PFPKI ≈ 3.6.
pub fn km() -> AppSpec {
    AppSpec {
        name: "KM".into(),
        pattern: Pattern::Adjacent,
        footprint: 20000,
        shared_frac: 0.0375,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.45,
        p_halo: 0.02,
        run_len: 8,
        write_frac_private: 0.05,
        write_frac_shared: 0.02,
        compute_mean: 40,
        cache_hit: 0.5,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// PageRank (Hetero-Mark): random neighbour chasing over the whole graph,
/// PFPKI ≈ 9.2.
pub fn pr() -> AppSpec {
    AppSpec {
        name: "PR".into(),
        pattern: Pattern::Random,
        footprint: 32000,
        shared_frac: 0.225,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.4,
        p_halo: 0.0,
        run_len: 8,
        write_frac_private: 0.2,
        write_frac_shared: 0.15,
        compute_mean: 25,
        cache_hit: 0.3,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Matrix multiplication (AMDAPPSDK): row blocks private, the B matrix
/// streamed by every GPU, PFPKI ≈ 3.2.
pub fn mm() -> AppSpec {
    AppSpec {
        name: "MM".into(),
        pattern: Pattern::ScatterGather,
        footprint: 24000,
        shared_frac: 0.125,
        ctas: 1024,
        accesses_per_cta: 220,
        p_shared: 0.3,
        p_halo: 0.0,
        run_len: 12,
        write_frac_private: 0.1,
        write_frac_shared: 0.02,
        compute_mean: 60,
        cache_hit: 0.6,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Matrix transpose (AMDAPPSDK): reads own rows, writes transposed columns
/// shared by all GPUs — the paper's worst case, PFPKI ≈ 34.
pub fn mt() -> AppSpec {
    AppSpec {
        name: "MT".into(),
        pattern: Pattern::ScatterGather,
        footprint: 24000,
        shared_frac: 0.125,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.3,
        p_halo: 0.0,
        run_len: 5,
        write_frac_private: 0.05,
        write_frac_shared: 0.85,
        compute_mean: 16,
        cache_hit: 0.35,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Simple convolution (AMDAPPSDK): shared input image read by all GPUs,
/// PFPKI ≈ 9.0.
pub fn sc() -> AppSpec {
    AppSpec {
        name: "SC".into(),
        pattern: Pattern::Adjacent,
        footprint: 24000,
        shared_frac: 0.1,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.45,
        p_halo: 0.05,
        run_len: 10,
        write_frac_private: 0.2,
        write_frac_shared: 0.05,
        compute_mean: 30,
        cache_hit: 0.5,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Stencil 2D (SHOC): iterative sweeps with written halos ping-ponging
/// between neighbouring GPUs, PFPKI ≈ 17.6.
pub fn st() -> AppSpec {
    AppSpec {
        name: "ST".into(),
        pattern: Pattern::Adjacent,
        footprint: 20000,
        shared_frac: 0.015,
        ctas: 1024,
        accesses_per_cta: 200,
        p_shared: 0.35,
        p_halo: 0.05,
        run_len: 4,
        write_frac_private: 0.4,
        write_frac_shared: 0.5,
        compute_mean: 25,
        cache_hit: 0.45,
        pair_halo: true,
        gpu_hint: 4,
    }
}

/// 2-D convolution layer (DNNMark): shared filter weights, write-heavy
/// shared output, PFPKI ≈ 1.8.
pub fn conv2d() -> AppSpec {
    AppSpec {
        name: "Conv2d".into(),
        pattern: Pattern::Adjacent,
        footprint: 28000,
        shared_frac: 0.0875,
        ctas: 1024,
        accesses_per_cta: 220,
        p_shared: 0.22,
        p_halo: 0.05,
        run_len: 12,
        write_frac_private: 0.15,
        write_frac_shared: 0.5,
        compute_mean: 50,
        cache_hit: 0.6,
        pair_halo: false,
        gpu_hint: 4,
    }
}

/// Image-to-column transform (DNNMark): scatter-gather writes into a
/// shared layout buffer, PFPKI ≈ 1.2.
pub fn im2col() -> AppSpec {
    AppSpec {
        name: "Im2col".into(),
        pattern: Pattern::ScatterGather,
        footprint: 24000,
        shared_frac: 0.1,
        ctas: 1024,
        accesses_per_cta: 180,
        p_shared: 0.25,
        p_halo: 0.0,
        run_len: 12,
        write_frac_private: 0.1,
        write_frac_shared: 0.6,
        compute_mean: 35,
        cache_hit: 0.55,
        pair_halo: false,
        gpu_hint: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_reduces_work_not_footprint() {
        let base = mt();
        let small = base.scaled(0.1);
        assert_eq!(small.footprint, base.footprint);
        assert!(small.ctas < base.ctas);
        assert!(small.accesses_per_cta < base.accesses_per_cta);
    }

    #[test]
    fn scaled_has_floors() {
        let tiny = mt().scaled(1e-9);
        assert!(tiny.ctas >= 4);
        assert!(tiny.accesses_per_cta >= 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = mt().scaled(0.0);
    }

    #[test]
    fn stream_length_matches_spec() {
        let spec = aes().scaled(0.05);
        let mut s = spec.make_stream(0, 1);
        let mut n = 0;
        while s.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, spec.accesses_per_cta);
    }

    #[test]
    fn partition_app_ctas_touch_disjoint_private_pages() {
        let spec = aes();
        let pages = |cta: usize| {
            let mut s = spec.make_stream(cta, 9);
            let mut v = std::collections::HashSet::new();
            while let Some(a) = s.next_access() {
                v.insert(a.vpn);
            }
            v
        };
        let a = pages(10);
        let b = pages(900); // far-apart CTAs on different GPUs
        let shared = spec.shared_pages();
        let overlap: Vec<_> = a.intersection(&b).filter(|&&p| p >= shared).collect();
        assert!(
            overlap.is_empty(),
            "AES far-apart CTAs overlap privately: {overlap:?}"
        );
    }

    #[test]
    fn random_app_spreads_over_footprint() {
        let spec = pr();
        let mut s = spec.make_stream(0, 3);
        let mut pages = std::collections::HashSet::new();
        while let Some(a) = s.next_access() {
            pages.insert(a.vpn);
        }
        // ~33 runs of mean length 6 over a hot region: expect a dozen or
        // more distinct pages.
        assert!(pages.len() > 12, "PR stream too concentrated: {}", pages.len());
    }

    #[test]
    fn halo_app_touches_neighbour_pages() {
        // ST exchanges ghost zones through the (pair-shared) shared region
        // plus direct CTA halos.
        let spec = st();
        let part = spec.partition_pages();
        let shared = spec.shared_pages();
        let cta = 100usize;
        let my = shared + cta as u64 * part..shared + (cta as u64 + 1) * part;
        let mut s = spec.make_stream(cta, 3);
        let mut exchanged = 0;
        let mut total = 0;
        while let Some(a) = s.next_access() {
            total += 1;
            if a.vpn < shared || !my.contains(&a.vpn) {
                exchanged += 1;
            }
        }
        assert!(
            exchanged > total / 10,
            "ST ghost-zone traffic too rare: {exchanged}/{total}"
        );
    }

    #[test]
    fn st_ghost_zones_are_pairwise() {
        // CTAs on GPU 0 and GPU 3 (gpu_hint = 4) must use disjoint zones.
        let spec = st();
        let shared = spec.shared_pages();
        let zone_pages = |cta: usize| {
            let mut s = spec.make_stream(cta, 3);
            let mut v = std::collections::HashSet::new();
            while let Some(a) = s.next_access() {
                if a.vpn < shared {
                    v.insert(a.vpn);
                }
            }
            v
        };
        let gpu0 = zone_pages(10); // zone 0 only
        let gpu3 = zone_pages(spec.ctas - 10); // zone 2 only
        assert!(
            gpu0.intersection(&gpu3).count() == 0,
            "non-adjacent GPUs must not share ghost zones"
        );
    }

    #[test]
    fn compute_intensity_ordering() {
        assert!(aes().compute_mean > mt().compute_mean);
        assert!(fir().compute_mean > pr().compute_mean);
    }
}
