//! An oversubscribed working-set-shift pattern for the eviction engine.
//!
//! The footprint is a long strip of pages the run slides a working set
//! across: in epoch `e` the hot window covers pages
//! `[e * stride_pages, e * stride_pages + working_set_pages)`, so
//! consecutive epochs overlap by `working_set_pages - stride_pages` pages —
//! the carried-over fraction stays hot (and must NOT be evicted by a sane
//! policy) while the trailing fraction goes cold (the natural victims). A
//! separate cold region is swept sequentially at low probability:
//! streaming traffic that pollutes an LRU stack and gives the thrash gate's
//! background shedding something to cut.
//!
//! Sized against [`OversubConfig::capacity_pages`]
//! (`mgpu::OversubConfig`), a working set larger than a GPU's capacity
//! forces steady-state eviction; the epoch shifts then turn yesterday's
//! residents into dead weight and today's window into a refault storm —
//! the input the thrash detector is built for.

use mgpu::workload::{Access, AccessStream, Workload};
use sim_core::{Cycle, SimRng};

/// Working-set-shift workload tuned for memory oversubscription: the hot
/// window slides across a strip wider than device memory.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubShift {
    /// Number of working-set epochs the run slides through.
    pub epochs: usize,
    /// Pages in each epoch's working set.
    pub working_set_pages: u64,
    /// Pages the window advances per epoch (< `working_set_pages` keeps an
    /// overlapping hot core across the shift).
    pub stride_pages: u64,
    /// Cold streaming region, swept sequentially.
    pub cold_pages: u64,
    /// Number of CTAs.
    pub ctas: usize,
    /// Memory instructions per CTA.
    pub accesses_per_cta: usize,
    /// Probability an access targets the current working set (the rest
    /// stream through the cold region).
    pub p_working: f64,
    /// Write probability inside the working set.
    pub write_frac: f64,
    /// Mean same-page run length.
    pub run_len: u32,
    /// Mean compute cycles between memory instructions.
    pub compute_mean: Cycle,
    /// Data-cache hit probability.
    pub cache_hit: f64,
}

/// The default oversubscription spec: four epochs sliding a 256-page
/// working set by half its width, plus a 256-page cold stream.
pub fn oversub_shift() -> OversubShift {
    OversubShift {
        epochs: 4,
        working_set_pages: 256,
        stride_pages: 128,
        cold_pages: 256,
        ctas: 512,
        accesses_per_cta: 200,
        p_working: 0.75,
        write_frac: 0.2,
        run_len: 4,
        compute_mean: 30,
        cache_hit: 0.4,
    }
}

impl OversubShift {
    /// Scales work (CTAs and accesses) by `factor`; footprint and mix are
    /// unchanged — the same floors as [`AppSpec::scaled`](crate::AppSpec).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> OversubShift {
        assert!(factor > 0.0, "factor must be positive");
        OversubShift {
            ctas: ((self.ctas as f64 * factor) as usize).max(4),
            accesses_per_cta: ((self.accesses_per_cta as f64 * factor) as usize).max(8),
            ..self.clone()
        }
    }

    /// Pages covered by the sliding working-set strip (cold region excluded).
    pub fn strip_pages(&self) -> u64 {
        (self.epochs as u64 - 1) * self.stride_pages + self.working_set_pages
    }
}

impl Workload for OversubShift {
    fn name(&self) -> &str {
        "OversubShift"
    }

    fn footprint_pages(&self) -> u64 {
        self.strip_pages() + self.cold_pages
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        Box::new(OversubStream {
            spec: self.clone(),
            rng: SimRng::new(seed ^ 0x05EB_F00Du64.wrapping_mul(cta as u64 + 1)),
            issued: 0,
            run_left: 0,
            run_vpn: 0,
            cursor: cta as u64,
        })
    }

    fn data_cache_hit_rate(&self) -> f64 {
        self.cache_hit
    }

    /// The first epoch's working set starts striped across the GPUs (a
    /// previous kernel left it resident); the rest of the strip and the
    /// cold stream start on the host.
    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        if vpn < self.working_set_pages {
            Some((vpn * u64::from(gpus) / self.working_set_pages.max(1)) as u16)
        } else {
            None
        }
    }
}

/// Lazily generated access stream for one CTA of an [`OversubShift`].
#[derive(Debug)]
struct OversubStream {
    spec: OversubShift,
    rng: SimRng,
    issued: usize,
    run_left: u32,
    run_vpn: u64,
    /// Sequential sweep position within the cold region.
    cursor: u64,
}

impl OversubStream {
    fn current_epoch(&self) -> usize {
        (self.issued * self.spec.epochs / self.spec.accesses_per_cta.max(1))
            .min(self.spec.epochs - 1)
    }

    fn start_run(&mut self) {
        let s = &self.spec;
        self.run_vpn = if self.rng.chance(s.p_working) {
            let base = self.current_epoch() as u64 * s.stride_pages;
            base + self.rng.gen_range(s.working_set_pages.max(1))
        } else {
            let vpn = s.strip_pages() + (self.cursor % s.cold_pages.max(1));
            self.cursor += 1;
            vpn
        };
        let max_run = u64::from((2 * s.run_len).max(1));
        self.run_left = (1 + self.rng.gen_range(max_run)) as u32;
    }
}

impl AccessStream for OversubStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.issued >= self.spec.accesses_per_cta {
            return None;
        }
        if self.run_left == 0 {
            self.start_run();
        }
        self.run_left -= 1;
        self.issued += 1;
        let compute = self.spec.compute_mean / 2
            + self.rng.gen_range(self.spec.compute_mean.max(1));
        Some(Access {
            vpn: self.run_vpn,
            is_write: self.rng.chance(self.spec.write_frac),
            compute,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_length_matches_spec() {
        let spec = oversub_shift().scaled(0.05);
        let mut s = spec.make_stream(0, 1);
        let mut n = 0;
        while s.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, spec.accesses_per_cta);
    }

    #[test]
    fn streams_are_deterministic() {
        let spec = oversub_shift().scaled(0.1);
        let collect = |seed| {
            let mut s = spec.make_stream(3, seed);
            let mut v = Vec::new();
            while let Some(x) = s.next_access() {
                v.push((x.vpn, x.is_write, x.compute));
            }
            v
        };
        assert_eq!(collect(42), collect(42));
    }

    #[test]
    fn streams_stay_in_footprint() {
        let spec = oversub_shift().scaled(0.1);
        for cta in [0, spec.ctas / 2, spec.ctas - 1] {
            let mut s = spec.make_stream(cta, 7);
            while let Some(x) = s.next_access() {
                assert!(x.vpn < spec.footprint_pages(), "cta {cta} vpn {}", x.vpn);
            }
        }
    }

    #[test]
    fn working_set_slides_with_the_epoch() {
        // Strip accesses in each quarter of the stream must fall inside
        // that quarter's window (a run may bleed across the boundary from
        // the previous window).
        let spec = oversub_shift();
        let mut s = spec.make_stream(0, 11);
        for i in 0..spec.accesses_per_cta {
            let a = s.next_access().unwrap();
            if a.vpn >= spec.strip_pages() {
                continue; // cold stream
            }
            let epoch = (i * spec.epochs / spec.accesses_per_cta).min(spec.epochs - 1) as u64;
            let lo = epoch.saturating_sub(1) * spec.stride_pages;
            let hi = epoch * spec.stride_pages + spec.working_set_pages;
            assert!(
                (lo..hi).contains(&a.vpn),
                "access {i} (epoch {epoch}) hit vpn {} outside [{lo}, {hi})",
                a.vpn
            );
        }
    }

    #[test]
    fn first_working_set_starts_striped() {
        let spec = oversub_shift();
        assert_eq!(spec.initial_owner(0, 4), Some(0));
        assert_eq!(spec.initial_owner(spec.working_set_pages - 1, 4), Some(3));
        assert_eq!(spec.initial_owner(spec.working_set_pages, 4), None);
        assert_eq!(spec.initial_owner(spec.strip_pages(), 4), None);
    }

    #[test]
    fn oversub_shift_runs_with_eviction_enabled() {
        use mgpu::{OversubConfig, System, SystemConfig};
        let spec = oversub_shift().scaled(0.02);
        // Capacity below the warm stripe (128 pages/GPU): the run starts
        // over-subscribed and must evict to get under the line.
        let capacity = spec.working_set_pages as usize / 4;
        let cfg = SystemConfig::builder()
            .gpus(2)
            .cus_per_gpu(2)
            .seed(9)
            .oversub(OversubConfig::with_capacity(capacity))
            .build();
        let m = System::new(cfg).run(&spec).expect("oversubscribed run completes");
        assert!(m.total_cycles > 0);
        assert!(m.oversub.evictions > 0, "no evictions under 2x oversubscription");
    }
}
