//! Statistical validation of the Table III workload generators: each
//! pattern class must produce the cross-GPU page-access structure its
//! classification implies.

use std::collections::{HashMap, HashSet};

use mgpu::workload::Workload;
use workloads::{all_apps, app, AppSpec};

/// Collects, per page, the set of GPUs (under 4-GPU greedy CTA placement)
/// touching it and the access counts.
fn profile(spec: &AppSpec) -> HashMap<u64, (u64, u64, u64)> {
    // vpn -> (gpu_mask, reads, writes)
    let mut map: HashMap<u64, (u64, u64, u64)> = HashMap::new();
    let ctas = spec.cta_count();
    for cta in 0..ctas {
        let gpu = cta * 4 / ctas;
        let mut s = spec.make_stream(cta, 11);
        while let Some(a) = s.next_access() {
            let e = map.entry(a.vpn).or_default();
            e.0 |= 1 << gpu;
            if a.is_write {
                e.2 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    map
}

fn shared_access_fraction(spec: &AppSpec) -> f64 {
    let p = profile(spec);
    let mut shared = 0u64;
    let mut total = 0u64;
    for (mask, r, w) in p.values() {
        total += r + w;
        if mask.count_ones() >= 2 {
            shared += r + w;
        }
    }
    shared as f64 / total.max(1) as f64
}

#[test]
fn partition_apps_share_almost_nothing() {
    for name in ["AES", "FIR"] {
        let f = shared_access_fraction(&app(name).unwrap().scaled(0.5));
        assert!(f < 0.05, "{name}: shared fraction {f}");
    }
}

#[test]
fn sharing_heavy_apps_share_substantially() {
    // MT's scatter writes spread over a larger shared region, so its
    // access-weighted sharing is lower at half scale than the hot-set apps.
    for (name, floor) in [("KM", 0.15), ("PR", 0.15), ("SC", 0.15), ("MT", 0.10)] {
        let f = shared_access_fraction(&app(name).unwrap().scaled(0.5));
        assert!(f > floor, "{name}: shared fraction {f}");
    }
}

#[test]
fn st_shares_pairwise_only() {
    let p = profile(&app("ST").unwrap().scaled(0.5));
    let mut pairwise = 0;
    let mut wider = 0;
    for (mask, _, _) in p.values() {
        match mask.count_ones() {
            2 => {
                pairwise += 1;
                // Ghost zones join *adjacent* GPUs.
                let lo = mask.trailing_zeros();
                let hi = 63 - mask.leading_zeros();
                assert_eq!(hi - lo, 1, "non-adjacent pair 0b{mask:b}");
            }
            3 | 4 => wider += 1,
            _ => {}
        }
    }
    assert!(pairwise > 0, "ST must have pairwise-shared ghost pages");
    assert!(
        wider <= pairwise / 5,
        "ST sharing should be pairwise: {pairwise} pairs vs {wider} wider"
    );
}

#[test]
fn write_mix_separates_the_fig24_classes() {
    // Write-intensive-on-shared apps vs read-mostly ones.
    let shared_write_frac = |name: &str| {
        let p = profile(&app(name).unwrap().scaled(0.5));
        let (mut r, mut w) = (0u64, 0u64);
        for (mask, pr, pw) in p.values() {
            if mask.count_ones() >= 2 {
                r += pr;
                w += pw;
            }
        }
        w as f64 / (r + w).max(1) as f64
    };
    for heavy in ["MT", "Im2col"] {
        for light in ["KM", "SC", "PR"] {
            assert!(
                shared_write_frac(heavy) > shared_write_frac(light),
                "{heavy} must write shared pages more than {light}"
            );
        }
    }
}

#[test]
fn compute_intensity_separates_the_insensitive_apps() {
    // AES/FIR hide fault latency behind compute (paper §V-A).
    let mean_compute = |spec: &AppSpec| {
        let mut s = spec.make_stream(0, 5);
        let mut total = 0u64;
        let mut n = 0u64;
        while let Some(a) = s.next_access() {
            total += a.compute;
            n += 1;
        }
        total as f64 / n as f64
    };
    let insensitive = ["AES", "FIR"].map(|n| mean_compute(&app(n).unwrap()));
    let sensitive = ["MT", "PR"].map(|n| mean_compute(&app(n).unwrap()));
    let min_i = insensitive.iter().cloned().fold(f64::MAX, f64::min);
    let max_s = sensitive.iter().cloned().fold(0.0, f64::max);
    assert!(
        min_i > 3.0 * max_s,
        "compute-bound apps must be far more compute-intensive: {min_i} vs {max_s}"
    );
}

#[test]
fn footprints_are_actually_touched() {
    // Every app must touch a meaningful portion of its private footprint
    // (no dead configuration), and nothing outside it.
    for spec in all_apps() {
        let spec = spec.scaled(0.5);
        let p = profile(&spec);
        assert!(
            p.len() as u64 > spec.footprint / 100,
            "{}: only {} pages touched of {}",
            spec.name,
            p.len(),
            spec.footprint
        );
        assert!(p.keys().all(|&v| v < spec.footprint), "{}", spec.name);
    }
}

#[test]
fn cta_streams_differ_across_ctas() {
    let spec = app("PR").unwrap().scaled(0.2);
    let collect = |cta: usize| {
        let mut s = spec.make_stream(cta, 9);
        let mut v = HashSet::new();
        while let Some(a) = s.next_access() {
            v.insert(a.vpn);
        }
        v
    };
    let a = collect(0);
    let b = collect(1);
    assert_ne!(a, b, "different CTAs must not replay identical streams");
}

#[test]
fn ml_models_have_dominant_shared_weight_traffic() {
    for m in [workloads::vgg16().scaled(0.3), workloads::resnet18().scaled(0.3)] {
        let mut shared_accesses = 0u64;
        let mut total = 0u64;
        let weight_region = 2 * (m.footprint_pages() - m.cta_count() as u64 * {
            // activations = footprint - 2*weights; recompute per model
            (m.footprint_pages() - 2 * m.layers.iter().map(|l| l.weight_pages).sum::<u64>())
                / m.cta_count() as u64
        }) / 2;
        for cta in [0, m.cta_count() / 2] {
            let mut s = m.make_stream(cta, 3);
            while let Some(a) = s.next_access() {
                total += 1;
                if a.vpn < weight_region {
                    shared_accesses += 1;
                }
            }
        }
        let f = shared_accesses as f64 / total.max(1) as f64;
        assert!(
            (0.1..0.9).contains(&f),
            "{}: weight/gradient traffic fraction {f}",
            m.name
        );
    }
}
