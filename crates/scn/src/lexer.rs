//! The `.scn` lexer: source text to a token stream with line/column spans.
//!
//! Same hand-rolled shape as the `simlint` Rust lexer, specialised to the
//! scenario language: identifiers, unsigned integer and float literals,
//! double-quoted strings, single-character punctuation, and `#`/`//`
//! comments. Unlike the linter's forgiving lexer, this one *reports*
//! malformed input (unterminated strings, bad numbers) as positioned
//! errors — the compiler is the authority here, and fuzzed input must
//! come back as a clean [`Error`], never a panic.

use crate::{Error, Pos};

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Token payload.
    pub kind: TokKind,
    /// Source position the token starts at.
    pub pos: Pos,
}

/// Token payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword (`scenario`, `gpus`, `true`, `none`, …).
    Ident(String),
    /// An unsigned integer literal (`_` separators allowed).
    Int(u64),
    /// A float literal (`0.02`, `1.5e3`).
    Float(f64),
    /// A double-quoted string literal, unescaped.
    Str(String),
    /// A single punctuation character (`{`, `}`, `=`, `,`, `(`, `)`, `[`,
    /// `]`).
    Punct(char),
    /// End of input (always the final token).
    Eof,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match &self.kind {
            TokKind::Ident(s) => format!("`{s}`"),
            TokKind::Int(n) => format!("`{n}`"),
            TokKind::Float(x) => format!("`{x:?}`"),
            TokKind::Str(s) => format!("\"{s}\""),
            TokKind::Punct(c) => format!("`{c}`"),
            TokKind::Eof => "end of input".into(),
        }
    }
}

/// Lexes `.scn` source into tokens (terminated by an [`TokKind::Eof`]).
///
/// # Errors
///
/// Returns a positioned [`Error`] on unterminated strings, malformed
/// numbers, string escapes other than `\"` `\\` `\n` `\t`, or control
/// characters inside a string.
pub fn lex(src: &str) -> Result<Vec<Tok>, Error> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let (tok, ni, ncol) = lex_string(&chars, i, pos)?;
                out.push(tok);
                i = ni;
                col = ncol;
            }
            c if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(&chars, i, pos)?;
                col += u32::try_from(ni - i).unwrap_or(u32::MAX);
                out.push(tok);
                i = ni;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                col += u32::try_from(i - start).unwrap_or(u32::MAX);
                out.push(Tok {
                    kind: TokKind::Ident(chars[start..i].iter().collect()),
                    pos,
                });
            }
            p => {
                out.push(Tok {
                    kind: TokKind::Punct(p),
                    pos,
                });
                col += 1;
                i += 1;
            }
        }
    }
    out.push(Tok {
        kind: TokKind::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

/// Lexes the string starting at the `"` at index `i`; returns the token,
/// the index past the closing quote, and the column after it.
fn lex_string(chars: &[char], mut i: usize, pos: Pos) -> Result<(Tok, usize, u32), Error> {
    let mut s = String::new();
    let mut col = pos.col + 1;
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                return Ok((
                    Tok {
                        kind: TokKind::Str(s),
                        pos,
                    },
                    i + 1,
                    col + 1,
                ));
            }
            '\\' => {
                let esc = chars.get(i + 1).copied();
                let lit = match esc {
                    Some('"') => '"',
                    Some('\\') => '\\',
                    Some('n') => '\n',
                    Some('t') => '\t',
                    other => {
                        return Err(Error::at(
                            Pos { line: pos.line, col },
                            format!(
                                "unknown string escape `\\{}`",
                                other.map_or("<eof>".into(), |c| c.to_string())
                            ),
                        ));
                    }
                };
                s.push(lit);
                i += 2;
                col += 2;
            }
            '\n' => {
                return Err(Error::at(pos, "unterminated string literal".into()));
            }
            c if (c as u32) < 0x20 => {
                return Err(Error::at(
                    Pos { line: pos.line, col },
                    "control character in string literal".into(),
                ));
            }
            c => {
                s.push(c);
                i += 1;
                col += 1;
            }
        }
    }
    Err(Error::at(pos, "unterminated string literal".into()))
}

/// Lexes the number starting at index `i`; returns the token and the index
/// past it. Grammar: `digits ('.' digits)? ([eE] [+-]? digits)?`, with `_`
/// separators allowed between digits.
fn lex_number(chars: &[char], start: usize, pos: Pos) -> Result<(Tok, usize), Error> {
    let mut i = start;
    let mut text = String::new();
    let digits = |i: &mut usize, text: &mut String| {
        let mut any = false;
        while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
            if chars[*i] != '_' {
                text.push(chars[*i]);
                any = true;
            }
            *i += 1;
        }
        any
    };
    digits(&mut i, &mut text);
    let mut is_float = false;
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
        is_float = true;
        text.push('.');
        i += 1;
        digits(&mut i, &mut text);
    }
    if matches!(chars.get(i), Some('e') | Some('E')) {
        is_float = true;
        text.push('e');
        i += 1;
        if matches!(chars.get(i), Some('+') | Some('-')) {
            text.push(chars[i]);
            i += 1;
        }
        if !digits(&mut i, &mut text) {
            return Err(Error::at(pos, "exponent needs digits".into()));
        }
    }
    // A number must not run straight into an identifier (`4x` is a typo,
    // not a literal plus an ident).
    if chars
        .get(i)
        .is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
    {
        return Err(Error::at(pos, format!("malformed number near `{text}`")));
    }
    let kind = if is_float {
        let x: f64 = text
            .parse()
            .map_err(|_| Error::at(pos, format!("malformed float `{text}`")))?;
        if !x.is_finite() {
            return Err(Error::at(pos, format!("float `{text}` overflows")));
        }
        TokKind::Float(x)
    } else {
        TokKind::Int(
            text.parse()
                .map_err(|_| Error::at(pos, format!("integer `{text}` out of range")))?,
        )
    };
    Ok((Tok { kind, pos }, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_basic_shapes() {
        let ks = kinds("gpus = 4 # comment\nscale = 0.1 // also\nname = \"KM\"");
        assert_eq!(
            ks,
            vec![
                TokKind::Ident("gpus".into()),
                TokKind::Punct('='),
                TokKind::Int(4),
                TokKind::Ident("scale".into()),
                TokKind::Punct('='),
                TokKind::Float(0.1),
                TokKind::Ident("name".into()),
                TokKind::Punct('='),
                TokKind::Str("KM".into()),
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_one_based_line_and_col() {
        let toks = lex("a = 1\n  bb = 2").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[2].pos, Pos { line: 1, col: 5 });
        assert_eq!(toks[3].pos, Pos { line: 2, col: 3 });
        assert_eq!(toks[5].pos, Pos { line: 2, col: 8 });
    }

    #[test]
    fn underscore_separators_and_exponents() {
        assert_eq!(kinds("1_000")[0], TokKind::Int(1000));
        assert_eq!(kinds("1.5e3")[0], TokKind::Float(1500.0));
        assert_eq!(kinds("2e2")[0], TokKind::Float(200.0));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("\"a\\\"b\\\\c\"")[0], TokKind::Str("a\"b\\c".into()));
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("x = \"open").unwrap_err();
        assert_eq!((e.pos.line, e.pos.col), (1, 5));
        assert!(e.msg.contains("unterminated"));
        let e = lex("n = 18446744073709551616").unwrap_err();
        assert!(e.msg.contains("out of range"));
        let e = lex("n = 4x").unwrap_err();
        assert!(e.msg.contains("malformed number"));
        let e = lex("n = 1e").unwrap_err();
        assert!(e.msg.contains("exponent"));
    }

    #[test]
    fn dot_without_digit_is_not_part_of_number() {
        // `1.` is a malformed-number error (nothing in the grammar uses a
        // trailing dot), while `1 .` lexes as int + punct.
        assert!(lex("1.").is_err());
        let ks = kinds("1 .");
        assert_eq!(ks[0], TokKind::Int(1));
        assert_eq!(ks[1], TokKind::Punct('.'));
    }
}
