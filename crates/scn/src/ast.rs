//! The `.scn` abstract syntax tree, as produced by the parser.
//!
//! The AST is purely syntactic: keys are uninterpreted identifiers and
//! values carry their source positions, so the semantic pass
//! ([`crate::sema`]) can report *where* a constraint was violated, not
//! just that one was.

use crate::Pos;

/// A parsed `.scn` file: a sequence of scenario declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct File {
    /// The scenarios, in source order.
    pub scenarios: Vec<ScenarioDecl>,
}

/// One `scenario "name" { ... }` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDecl {
    /// The scenario's quoted name.
    pub name: String,
    /// Position of the `scenario` keyword.
    pub pos: Pos,
    /// Bindings and sections in the body, in source order.
    pub items: Vec<Item>,
}

/// One item in a scenario or section body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `key = value`.
    Binding(Binding),
    /// `name { ... }`.
    Section(Section),
}

impl Item {
    /// The item's key/section name.
    pub fn key(&self) -> &str {
        match self {
            Item::Binding(b) => &b.key,
            Item::Section(s) => &s.name,
        }
    }

    /// The item's source position.
    pub fn pos(&self) -> Pos {
        match self {
            Item::Binding(b) => b.pos,
            Item::Section(s) => s.pos,
        }
    }
}

/// A `key = value` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The key identifier.
    pub key: String,
    /// Position of the key.
    pub pos: Pos,
    /// The bound value.
    pub value: Value,
}

/// A nested `name { ... }` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// The section name.
    pub name: String,
    /// Position of the name.
    pub pos: Pos,
    /// Bindings and sections in the body, in source order.
    pub items: Vec<Item>,
}

/// A value with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// Position of the value's first token.
    pub pos: Pos,
    /// The value payload.
    pub kind: ValueKind,
}

/// Value payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// An unsigned integer literal.
    Int(u64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A bare identifier (`true`, `none`, `lru`, `legacy`, …).
    Ident(String),
    /// A call such as `app(name = "KM", scale = 0.1)`.
    Call {
        /// The callee identifier.
        name: String,
        /// Arguments, positional or named, in source order.
        args: Vec<Arg>,
    },
    /// A bracketed list of values.
    List(Vec<Value>),
}

impl Value {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match &self.kind {
            ValueKind::Int(n) => format!("integer `{n}`"),
            ValueKind::Float(x) => format!("float `{x:?}`"),
            ValueKind::Str(s) => format!("string \"{s}\""),
            ValueKind::Ident(s) => format!("`{s}`"),
            ValueKind::Call { name, .. } => format!("call `{name}(...)`"),
            ValueKind::List(_) => "list".into(),
        }
    }
}

/// One argument of a call, optionally named.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// The argument name for `name = value` form, `None` for positional.
    pub name: Option<String>,
    /// Position of the argument.
    pub pos: Pos,
    /// The argument value.
    pub value: Value,
}
