//! Canonical printing and digesting of resolved scenarios.
//!
//! The canonical form is the *identity* of a scenario: every field of the
//! lowered IR printed in a fixed order with fixed formatting, independent
//! of how the source spelled it. Reparsing a canonical print yields an
//! identical IR (the parse→print→parse fixed point the round-trip tests
//! enforce), and the digest is computed over the canonical form — so
//! comments, whitespace, key order and sugar (`seeds = 2` vs
//! `seeds = [1, 2]`) never change a scenario's identity, while any
//! semantic change does. The `scnd` result cache keys on
//! `(digest, seed)`; its soundness argument lives in DESIGN.md and rests
//! on exactly this property plus simulator determinism.

use std::fmt::Write as _;

use mgpu::{FarFaultMode, PwcKind, SystemConfig};
use sim_core::fault::ComponentEvent;
use sim_core::FaultPlan;
use uvm::{EvictPolicy, PolicyKind};
use workloads::WorkloadSpec;

use crate::sema::Scenario;

/// FNV-1a 64-bit hash (the repo's stable, dependency-free digest idiom).
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Scenario {
    /// The canonical source form of this scenario. Guaranteed to reparse
    /// and re-lower to an identical [`Scenario`].
    pub fn canonical(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "scenario {} {{", quote(&self.name));
        let _ = writeln!(o, "  seeds = [{}]", join(self.seeds.iter()));
        print_system(&mut o, &self.base);
        print_transfw(&mut o, &self.base);
        print_overload(&mut o, &self.base);
        print_oversub(&mut o, &self.base);
        let _ = writeln!(
            o,
            "  placement = [{}]",
            join_by(self.placements.iter(), |p| placement_str(*p))
        );
        let _ = writeln!(
            o,
            "  workload = [{}]",
            join_by(self.workloads.iter(), workload_str)
        );
        let _ = writeln!(o, "  faults = [{}]", join_by(self.faults.iter(), fault_str));
        o.push_str("}\n");
        o
    }

    /// Stable identity of the scenario: FNV-1a 64 over the canonical form.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.canonical())
    }

    /// The digest as a fixed-width hex string (cache keys, file names).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

fn print_system(o: &mut String, c: &SystemConfig) {
    o.push_str("  system {\n");
    let kv = |o: &mut String, k: &str, v: String| {
        let _ = writeln!(o, "    {k} = {v}");
    };
    kv(o, "gpus", c.gpus.to_string());
    kv(o, "cus_per_gpu", c.cus_per_gpu.to_string());
    kv(o, "wavefronts_per_cu", c.wavefronts_per_cu.to_string());
    kv(o, "page_size_bits", c.page_size_bits.to_string());
    kv(o, "page_table_levels", c.page_table_levels.to_string());
    kv(o, "l1_tlb_entries", c.l1_tlb_entries.to_string());
    kv(o, "l1_tlb_latency", c.l1_tlb_latency.to_string());
    kv(o, "l2_tlb_entries", c.l2_tlb_entries.to_string());
    kv(o, "l2_tlb_assoc", c.l2_tlb_assoc.to_string());
    kv(o, "l2_tlb_latency", c.l2_tlb_latency.to_string());
    kv(o, "host_tlb_entries", c.host_tlb_entries.to_string());
    kv(o, "host_tlb_assoc", c.host_tlb_assoc.to_string());
    kv(o, "gmmu_walkers", c.gmmu_walkers.to_string());
    kv(o, "host_walkers", c.host_walkers.to_string());
    kv(o, "gmmu_pwc_entries", c.gmmu_pwc_entries.to_string());
    kv(o, "host_pwc_entries", c.host_pwc_entries.to_string());
    kv(
        o,
        "pwc_kind",
        match c.pwc_kind {
            PwcKind::Utc => "utc",
            PwcKind::Stc => "stc",
            PwcKind::Infinite => "infinite",
        }
        .into(),
    );
    kv(o, "pw_queue_entries", c.pw_queue_entries.to_string());
    kv(o, "walk_level_latency", c.walk_level_latency.to_string());
    kv(o, "host_fault_overhead", c.host_fault_overhead.to_string());
    kv(o, "cpu_link_latency", c.cpu_link_latency.to_string());
    kv(o, "peer_link_latency", c.peer_link_latency.to_string());
    kv(o, "link_bytes_per_cycle", c.link_bytes_per_cycle.to_string());
    kv(o, "dram_latency", c.dram_latency.to_string());
    kv(o, "cache_latency", c.cache_latency.to_string());
    kv(
        o,
        "fault_mode",
        match c.fault_mode {
            FarFaultMode::HostMmu => "host_mmu",
            FarFaultMode::UvmDriver => "uvm_driver",
        }
        .into(),
    );
    kv(o, "driver_per_gpu_poll", c.driver_per_gpu_poll.to_string());
    kv(o, "asap", opt_str(c.asap.map(|x| format!("{x:?}"))));
    kv(o, "least_tlb", c.least_tlb.to_string());
    kv(o, "sanitize", c.sanitize.to_string());
    kv(
        o,
        "checkpoint_interval",
        opt_str(c.checkpoint_interval.map(|x| x.to_string())),
    );
    o.push_str("    ideal {\n");
    let _ = writeln!(o, "      infinite_walkers = {}", c.ideal.infinite_walkers);
    let _ = writeln!(
        o,
        "      zero_migration_latency = {}",
        c.ideal.zero_migration_latency
    );
    let _ = writeln!(o, "      no_local_faults = {}", c.ideal.no_local_faults);
    o.push_str("    }\n");
    o.push_str("    watchdog {\n");
    let _ = writeln!(o, "      enabled = {}", c.watchdog.enabled);
    let _ = writeln!(o, "      request_timeout = {}", c.watchdog.request_timeout);
    let _ = writeln!(o, "      max_retries = {}", c.watchdog.max_retries);
    let _ = writeln!(
        o,
        "      liveness_interval = {}",
        c.watchdog.liveness_interval
    );
    let _ = writeln!(
        o,
        "      max_cycles = {}",
        opt_str(c.watchdog.max_cycles.map(|x| x.to_string()))
    );
    o.push_str("    }\n");
    o.push_str("  }\n");
}

fn print_transfw(o: &mut String, c: &SystemConfig) {
    match &c.transfw {
        None => {
            o.push_str("  transfw {\n    enabled = false\n  }\n");
        }
        Some(k) => {
            o.push_str("  transfw {\n    enabled = true\n");
            let _ = writeln!(o, "    gmmu_short_circuit = {}", k.gmmu_short_circuit);
            let _ = writeln!(o, "    host_forwarding = {}", k.host_forwarding);
            let _ = writeln!(o, "    prt_fingerprints = {}", k.config.prt_fingerprints);
            let _ = writeln!(o, "    prt_fp_bits = {}", k.config.prt_fp_bits);
            let _ = writeln!(o, "    prt_slots = {}", k.config.prt_slots);
            let _ = writeln!(o, "    ft_fingerprints = {}", k.config.ft_fingerprints);
            let _ = writeln!(o, "    ft_fp_bits = {}", k.config.ft_fp_bits);
            let _ = writeln!(o, "    ft_slots = {}", k.config.ft_slots);
            let _ = writeln!(o, "    vpn_mask_bits = {}", k.config.vpn_mask_bits);
            let _ = writeln!(
                o,
                "    forward_threshold = {:?}",
                k.config.forward_threshold
            );
            o.push_str("  }\n");
        }
    }
}

fn print_overload(o: &mut String, c: &SystemConfig) {
    let v = &c.overload;
    o.push_str("  overload {\n");
    let _ = writeln!(o, "    enabled = {}", v.enabled);
    let _ = writeln!(o, "    host_queue_high = {}", v.host_queue_high);
    let _ = writeln!(o, "    host_queue_low = {}", v.host_queue_low);
    let _ = writeln!(o, "    gpu_queue_high = {}", v.gpu_queue_high);
    let _ = writeln!(o, "    gpu_queue_low = {}", v.gpu_queue_low);
    let _ = writeln!(o, "    mshr_high = {}", v.mshr_high);
    let _ = writeln!(o, "    mshr_low = {}", v.mshr_low);
    let _ = writeln!(o, "    backoff_base = {}", v.backoff_base);
    let _ = writeln!(o, "    backoff_cap = {}", v.backoff_cap);
    let _ = writeln!(o, "    retry_budget = {}", v.retry_budget);
    let _ = writeln!(o, "    retry_refill_permille = {}", v.retry_refill_permille);
    let _ = writeln!(o, "    breaker_window = {}", v.breaker_window);
    let _ = writeln!(
        o,
        "    breaker_failure_permille = {}",
        v.breaker_failure_permille
    );
    let _ = writeln!(o, "    breaker_min_samples = {}", v.breaker_min_samples);
    let _ = writeln!(o, "    breaker_open_cycles = {}", v.breaker_open_cycles);
    let _ = writeln!(o, "    breaker_probes = {}", v.breaker_probes);
    let _ = writeln!(o, "    peer_backlog_high = {}", v.peer_backlog_high);
    o.push_str("  }\n");
}

fn print_oversub(o: &mut String, c: &SystemConfig) {
    let v = &c.oversub;
    o.push_str("  oversub {\n");
    let _ = writeln!(o, "    enabled = {}", v.enabled);
    let _ = writeln!(o, "    capacity_pages = {}", v.capacity_pages);
    let _ = writeln!(
        o,
        "    policy = {}",
        match v.policy {
            EvictPolicy::Lru => "lru",
            EvictPolicy::AccessCounter => "access_counter",
        }
    );
    let _ = writeln!(o, "    thrash_high = {}", v.thrash_high);
    let _ = writeln!(o, "    thrash_low = {}", v.thrash_low);
    let _ = writeln!(o, "    refault_window = {}", v.refault_window);
    let _ = writeln!(o, "    hot_protect = {}", v.hot_protect);
    o.push_str("  }\n");
}

fn placement_str(p: Option<PolicyKind>) -> String {
    match p {
        None => "legacy".into(),
        Some(PolicyKind::FirstTouch) => "first_touch".into(),
        Some(PolicyKind::ReadDuplicate) => "read_duplicate".into(),
        Some(PolicyKind::DelayedMigration { threshold }) => {
            format!("delayed_migration(threshold = {threshold})")
        }
        Some(PolicyKind::PrefetchNeighborhood { radius }) => {
            format!("prefetch_neighborhood(radius = {radius})")
        }
    }
}

fn workload_str(w: &WorkloadSpec) -> String {
    match w {
        WorkloadSpec::App { name, scale } => {
            format!("app(name = {}, scale = {scale:?})", quote(name))
        }
        WorkloadSpec::Uniform {
            pages,
            ctas,
            accesses_per_cta,
            write_frac,
            scale,
        } => format!(
            "uniform(pages = {pages}, ctas = {ctas}, accesses = {accesses_per_cta}, \
             write_frac = {write_frac:?}, scale = {scale:?})"
        ),
        WorkloadSpec::PhaseShift { scale } => format!("phase_shift(scale = {scale:?})"),
        WorkloadSpec::Burst { scale, load } => {
            format!("burst(scale = {scale:?}, load = {load})")
        }
        WorkloadSpec::OversubShift { scale } => format!("oversub_shift(scale = {scale:?})"),
    }
}

fn fault_str(f: &FaultPlan) -> String {
    if *f == FaultPlan::none() {
        return "none".into();
    }
    // The general `plan(...)` form: the seed always, then every
    // non-default field in a fixed order. Lowering `plan(...)` starts from
    // `FaultPlan::none()`, so this round-trips exactly.
    fn num(parts: &mut Vec<String>, name: &str, v: f64, dv: f64) {
        if v != dv {
            parts.push(format!("{name} = {v:?}"));
        }
    }
    let d = FaultPlan::none();
    let mut parts = vec![format!("seed = {}", f.seed)];
    num(&mut parts, "drop", f.message_drop_prob, d.message_drop_prob);
    num(&mut parts, "delay_p", f.message_delay_prob, d.message_delay_prob);
    if f.message_delay_cycles != d.message_delay_cycles {
        parts.push(format!("delay = {}", f.message_delay_cycles));
    }
    num(&mut parts, "dup", f.message_duplicate_prob, d.message_duplicate_prob);
    num(&mut parts, "stall_p", f.walker_stall_prob, d.walker_stall_prob);
    if f.walker_stall_cycles != d.walker_stall_cycles {
        parts.push(format!("stall = {}", f.walker_stall_cycles));
    }
    num(&mut parts, "table_drop", f.table_update_drop_prob, d.table_update_drop_prob);
    if f.table_pollution != d.table_pollution {
        parts.push(format!("pollution = {}", f.table_pollution));
    }
    if f.host_burst_period != d.host_burst_period {
        parts.push(format!("burst_period = {}", f.host_burst_period));
    }
    if f.host_burst_len != d.host_burst_len {
        parts.push(format!("burst_len = {}", f.host_burst_len));
    }
    if f.host_burst_extra != d.host_burst_extra {
        parts.push(format!("burst_extra = {}", f.host_burst_extra));
    }
    if !f.component_events.is_empty() {
        parts.push(format!(
            "events = [{}]",
            join_by(f.component_events.iter(), event_str)
        ));
    }
    format!("plan({})", parts.join(", "))
}

fn event_str(e: &ComponentEvent) -> String {
    match *e {
        ComponentEvent::GpuOffline { gpu, at_cycle, duration } => {
            format!("gpu_offline(gpu = {gpu}, at = {at_cycle}, dur = {duration})")
        }
        ComponentEvent::LinkPartition { a, b, at_cycle, duration } => {
            format!("link_partition(a = {a}, b = {b}, at = {at_cycle}, dur = {duration})")
        }
        ComponentEvent::HostMmuFailover { at_cycle, stall } => {
            format!("host_failover(at = {at_cycle}, stall = {stall})")
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn opt_str(v: Option<String>) -> String {
    v.unwrap_or_else(|| "none".into())
}

fn join(items: impl Iterator<Item = impl ToString>) -> String {
    items
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn join_by<T>(items: impl Iterator<Item = T>, f: impl Fn(T) -> String) -> String {
    items.map(f).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_one;

    #[test]
    fn canonical_is_a_parse_print_fixed_point() {
        let sc = compile_one(
            r#"scenario "fix" {
                 seeds = 2   # sugar for [1, 2]
                 scale = 0.1
                 transfw { enabled = true prt_fingerprints = 2000 }
                 placement = [first_touch, prefetch_neighborhood(radius = 3)]
                 workload = [app(name = "KM"), burst(load = 4)]
                 faults = [none, message_loss(seed = 5, p = 0.02)]
               }"#,
        )
        .unwrap();
        let canon = sc.canonical();
        let again = compile_one(&canon).expect("canonical form must reparse");
        assert_eq!(sc, again, "IR must survive a print/parse cycle");
        assert_eq!(canon, again.canonical(), "canonical form is a fixed point");
        assert_eq!(sc.digest(), again.digest());
    }

    #[test]
    fn formatting_never_changes_the_digest_but_semantics_do() {
        let a = compile_one(r#"scenario "s" { seeds = 2 workload = app(name = "KM") }"#).unwrap();
        let b = compile_one(
            "scenario \"s\" {\n  # reformatted, reordered, sugared differently\n  workload = [app(\"KM\")]\n  seeds = [1, 2]\n}",
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c =
            compile_one(r#"scenario "s" { seeds = 3 workload = app(name = "KM") }"#).unwrap();
        assert_ne!(a.digest(), c.digest(), "a semantic edit must change identity");
    }

    #[test]
    fn digest_is_stable_across_builds() {
        // Frozen vectors: if these change, every scnd cache entry and
        // recorded digest is invalidated — bump them deliberately, never
        // accidentally. Empty input hashes to the FNV offset basis; one
        // byte applies exactly one xor-multiply round.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            fnv1a64("a"),
            (0xcbf2_9ce4_8422_2325_u64 ^ u64::from(b'a')).wrapping_mul(0x0000_0100_0000_01b3)
        );
    }

    #[test]
    fn fault_plans_round_trip_through_the_plan_form() {
        let sc = compile_one(
            r#"scenario "s" {
                 workload = phase_shift
                 faults = plan(seed = 3, drop = 0.01, delay_p = 0.02, delay = 150,
                               stall_p = 0.1, stall = 300, pollution = 64,
                               burst_period = 1000, burst_len = 100, burst_extra = 50,
                               events = [link_partition(a = 0, b = 1, at = 5, dur = 9),
                                         host_failover(at = 7, stall = 11)])
               }"#,
        )
        .unwrap();
        let again = compile_one(&sc.canonical()).unwrap();
        assert_eq!(sc.faults, again.faults);
    }
}
