//! Recursive-descent parser: token stream to [`ast::File`].
//!
//! The grammar is small enough for one token of lookahead everywhere (see
//! the EBNF in DESIGN.md). The parser is total over arbitrary token
//! streams — fuzzed input produces a positioned [`Error`], never a panic —
//! and nesting depth is capped so adversarial bracket towers cannot
//! overflow the stack.

use crate::ast::{Arg, Binding, File, Item, ScenarioDecl, Section, Value, ValueKind};
use crate::lexer::{Tok, TokKind};
use crate::{Error, Pos};

/// Maximum value/section nesting depth. The deepest legitimate scenario
/// nests four levels (`scenario > system > watchdog > value`); 32 leaves
/// headroom while keeping fuzzer-constructed `[[[[…]]]]` towers from
/// recursing unboundedly.
const MAX_DEPTH: u32 = 32;

/// Parses a lexed token stream into a file AST.
///
/// # Errors
///
/// Returns a positioned [`Error`] on any syntax error.
pub fn parse(toks: &[Tok]) -> Result<File, Error> {
    let mut p = Parser { toks, i: 0 };
    let mut scenarios = Vec::new();
    while !p.peek().is_eof() {
        scenarios.push(p.scenario()?);
    }
    Ok(File { scenarios })
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl Tok {
    fn is_eof(&self) -> bool {
        self.kind == TokKind::Eof
    }
}

impl Parser<'_> {
    /// The current token. The lexer guarantees a trailing `Eof`, so the
    /// final token is always a safe resting place.
    fn peek(&self) -> &Tok {
        self.toks.get(self.i).unwrap_or_else(|| {
            // Unreachable with lexer-produced input; kept total for safety.
            &self.toks[self.toks.len() - 1]
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, Error> {
        let t = self.peek();
        Err(Error::at(
            t.pos,
            format!("expected {expected}, found {}", t.describe()),
        ))
    }

    fn expect_punct(&mut self, c: char) -> Result<Pos, Error> {
        if self.peek().is_punct(c) {
            Ok(self.bump().pos)
        } else {
            self.err(&format!("`{c}`"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), Error> {
        if let TokKind::Ident(s) = &self.peek().kind {
            let s = s.clone();
            let pos = self.bump().pos;
            Ok((s, pos))
        } else {
            self.err(what)
        }
    }

    /// `scenario = "scenario" string "{" { item } "}"`.
    fn scenario(&mut self) -> Result<ScenarioDecl, Error> {
        let (kw, pos) = self.ident("`scenario`")?;
        if kw != "scenario" {
            return Err(Error::at(pos, format!("expected `scenario`, found `{kw}`")));
        }
        let name = match &self.peek().kind {
            TokKind::Str(s) => {
                let s = s.clone();
                self.bump();
                s
            }
            _ => return self.err("scenario name string"),
        };
        let items = self.body(0)?;
        Ok(ScenarioDecl { name, pos, items })
    }

    /// `"{" { binding | section } "}"`.
    fn body(&mut self, depth: u32) -> Result<Vec<Item>, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at(self.peek().pos, "nesting too deep".into()));
        }
        self.expect_punct('{')?;
        let mut items = Vec::new();
        loop {
            if self.peek().is_punct('}') {
                self.bump();
                return Ok(items);
            }
            let (key, pos) = self.ident("a key, section name or `}`")?;
            if self.peek().is_punct('=') {
                self.bump();
                let value = self.value(depth + 1)?;
                items.push(Item::Binding(Binding { key, pos, value }));
            } else if self.peek().is_punct('{') {
                let inner = self.body(depth + 1)?;
                items.push(Item::Section(Section {
                    name: key,
                    pos,
                    items: inner,
                }));
            } else {
                return self.err("`=` or `{` after a key");
            }
        }
    }

    /// `value = int | float | string | list | ident | call`.
    fn value(&mut self, depth: u32) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at(self.peek().pos, "nesting too deep".into()));
        }
        let pos = self.peek().pos;
        let kind = match &self.peek().kind {
            TokKind::Int(n) => {
                let n = *n;
                self.bump();
                ValueKind::Int(n)
            }
            TokKind::Float(x) => {
                let x = *x;
                self.bump();
                ValueKind::Float(x)
            }
            TokKind::Str(s) => {
                let s = s.clone();
                self.bump();
                ValueKind::Str(s)
            }
            TokKind::Punct('[') => {
                self.bump();
                let mut vals = Vec::new();
                loop {
                    if self.peek().is_punct(']') {
                        self.bump();
                        break;
                    }
                    vals.push(self.value(depth + 1)?);
                    if self.peek().is_punct(',') {
                        self.bump();
                    } else if !self.peek().is_punct(']') {
                        return self.err("`,` or `]` in list");
                    }
                }
                ValueKind::List(vals)
            }
            TokKind::Ident(s) => {
                let name = s.clone();
                self.bump();
                if self.peek().is_punct('(') {
                    self.bump();
                    let args = self.args(depth + 1)?;
                    ValueKind::Call { name, args }
                } else {
                    ValueKind::Ident(name)
                }
            }
            _ => return self.err("a value"),
        };
        Ok(Value { pos, kind })
    }

    /// Call arguments after the opening `(`, consuming the closing `)`.
    fn args(&mut self, depth: u32) -> Result<Vec<Arg>, Error> {
        let mut args = Vec::new();
        loop {
            if self.peek().is_punct(')') {
                self.bump();
                return Ok(args);
            }
            let pos = self.peek().pos;
            // `ident =` starts a named argument; a bare ident (or anything
            // else) is a positional value.
            let name = match &self.peek().kind {
                TokKind::Ident(s)
                    if self.toks.get(self.i + 1).is_some_and(|t| t.is_punct('=')) =>
                {
                    let s = s.clone();
                    self.bump();
                    self.bump();
                    Some(s)
                }
                _ => None,
            };
            let value = self.value(depth + 1)?;
            args.push(Arg { name, pos, value });
            if self.peek().is_punct(',') {
                self.bump();
            } else if !self.peek().is_punct(')') {
                return self.err("`,` or `)` in call arguments");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<File, Error> {
        parse(&lex(src)?)
    }

    #[test]
    fn parses_bindings_sections_calls_and_lists() {
        let f = parse_src(
            r#"scenario "s" {
                 seeds = 2
                 system { gpus = 4 watchdog { enabled = true } }
                 workload = [app(name = "KM", scale = 0.1), phase_shift()]
               }"#,
        )
        .unwrap();
        assert_eq!(f.scenarios.len(), 1);
        let sc = &f.scenarios[0];
        assert_eq!(sc.name, "s");
        assert_eq!(sc.items.len(), 3);
        assert_eq!(sc.items[1].key(), "system");
        match &sc.items[2] {
            Item::Binding(b) => match &b.value.kind {
                ValueKind::List(vs) => {
                    assert_eq!(vs.len(), 2);
                    match &vs[0].kind {
                        ValueKind::Call { name, args } => {
                            assert_eq!(name, "app");
                            assert_eq!(args[0].name.as_deref(), Some("name"));
                            assert_eq!(args[1].name.as_deref(), Some("scale"));
                        }
                        other => panic!("expected call, got {other:?}"),
                    }
                }
                other => panic!("expected list, got {other:?}"),
            },
            other => panic!("expected binding, got {other:?}"),
        }
    }

    #[test]
    fn trailing_commas_allowed() {
        assert!(parse_src(r#"scenario "s" { a = [1, 2,] b = f(x = 1,) }"#).is_ok());
    }

    #[test]
    fn multiple_scenarios_per_file() {
        let f = parse_src(r#"scenario "a" {} scenario "b" {}"#).unwrap();
        assert_eq!(f.scenarios.len(), 2);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse_src("scenario \"s\" {\n  a = = 1\n}").unwrap_err();
        assert_eq!(e.pos.line, 2);
        assert!(e.msg.contains("expected a value"));
        let e = parse_src(r#"scenario "s" { a 1 }"#).unwrap_err();
        assert!(e.msg.contains("`=` or `{`"));
        let e = parse_src(r#"notscenario "s" {}"#).unwrap_err();
        assert!(e.msg.contains("expected `scenario`"));
    }

    #[test]
    fn unclosed_body_is_an_error_not_a_hang() {
        let e = parse_src(r#"scenario "s" { a = 1"#).unwrap_err();
        assert!(e.msg.contains("found end of input"), "{}", e.msg);
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let src = format!(r#"scenario "s" {{ a = {}1{} }}"#, "[".repeat(100), "]".repeat(100));
        let e = parse_src(&src).unwrap_err();
        assert!(e.msg.contains("nesting too deep"));
    }
}
