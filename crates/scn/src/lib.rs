//! The `.scn` scenario description language.
//!
//! A scenario is a small declarative text file describing one complete
//! experiment: the system configuration (Table II knobs, Trans-FW tables,
//! overload and oversubscription control), the placement-policy axis, the
//! workload axis, the fault-plan axis and the seeds. The compiler lowers a
//! file to resolved [`Scenario`] IR built from the *real* configuration
//! structs, so a compiled scenario is guaranteed to construct a runnable
//! system — every `validate()` assertion those structs enforce is mirrored
//! here as a positioned [`Error`].
//!
//! The pipeline: [`lexer`] → [`parser`] ([`ast`]) → [`sema`] →
//! [`Scenario`], with [`Scenario::canonical`] the pretty-printed normal
//! form and [`Scenario::digest`] a stable identity over it (see
//! [`print`]). The grammar's EBNF lives in DESIGN.md.
//!
//! # Examples
//!
//! ```
//! let sc = scn::compile_one(
//!     r#"scenario "demo" {
//!          seeds = 2
//!          scale = 0.1
//!          transfw { enabled = true }
//!          workload = [app(name = "KM"), phase_shift]
//!        }"#,
//! )
//! .unwrap();
//! assert_eq!(sc.cells().len(), 2);
//! assert_eq!(sc.seeds, vec![1, 2]);
//! // Identity is semantic: reformatting never changes the digest.
//! assert_eq!(scn::compile_one(&sc.canonical()).unwrap().digest(), sc.digest());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod sema;

use std::path::{Path, PathBuf};

pub use print::fnv1a64;
pub use sema::{Cell, Scenario};

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

/// A positioned compile error, displayed as `line:col: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Where in the source the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub msg: String,
}

impl Error {
    /// An error at a position.
    pub fn at(pos: Pos, msg: String) -> Self {
        Self { pos, msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.pos.line, self.pos.col, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses `.scn` source to its syntax tree (no semantic checking).
///
/// # Errors
///
/// Returns a positioned [`Error`] on lexical or syntax errors.
pub fn parse(src: &str) -> Result<ast::File, Error> {
    parser::parse(&lexer::lex(src)?)
}

/// Compiles `.scn` source to resolved scenarios.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error, positioned.
pub fn compile(src: &str) -> Result<Vec<Scenario>, Error> {
    sema::lower(&parse(src)?)
}

/// Compiles source that must contain exactly one scenario.
///
/// # Errors
///
/// As [`compile`], plus an error when the file holds zero or several
/// scenarios.
pub fn compile_one(src: &str) -> Result<Scenario, Error> {
    let mut scs = compile(src)?;
    match scs.len() {
        1 => Ok(scs.remove(0)),
        n => Err(Error::at(
            Pos { line: 1, col: 1 },
            format!("expected exactly one scenario, found {n}"),
        )),
    }
}

/// Locates the repository's committed `scenarios/` directory by walking up
/// from the current working directory (the committed scenarios sit beside
/// the workspace `Cargo.toml`), falling back to this crate's build-time
/// location so the experiment bins also work when invoked from outside the
/// repo. Returns `None` when neither walk finds it.
pub fn find_scenarios_dir() -> Option<PathBuf> {
    let from_cwd = std::env::current_dir()
        .ok()
        .and_then(|d| scenarios_dir_above(&d));
    from_cwd.or_else(|| scenarios_dir_above(Path::new(env!("CARGO_MANIFEST_DIR"))))
}

fn scenarios_dir_above(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let candidate = dir.join("scenarios");
        if candidate.is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_as_line_col_message() {
        let e = compile("scenario \"s\" {\n  bogus_key = 1\n  workload = phase_shift\n}")
            .unwrap_err();
        assert_eq!(e.pos.line, 2);
        assert!(e.to_string().starts_with("2:3: "), "{e}");
    }

    #[test]
    fn compile_one_rejects_multi_scenario_files() {
        let src = r#"scenario "a" { workload = phase_shift }
                     scenario "b" { workload = phase_shift }"#;
        assert_eq!(compile(src).unwrap().len(), 2);
        assert!(compile_one(src).unwrap_err().msg.contains("exactly one"));
    }

    #[test]
    fn duplicate_scenario_names_rejected() {
        let src = r#"scenario "a" { workload = phase_shift }
                     scenario "a" { workload = burst }"#;
        assert!(compile(src).unwrap_err().msg.contains("duplicate scenario"));
    }
}
