//! Compiles every committed `.scn` scenario and prints its digest — the
//! CI `scenario-check` gate.
//!
//! Usage: `cargo run -p scn --bin scn_check [dir]`. Without an argument
//! the repository's `scenarios/` directory is located automatically.
//! Exit status 1 if any file fails to compile (or none are found), with
//! `file:line:col: message` diagnostics on stderr.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) => PathBuf::from(d),
        None => match scn::find_scenarios_dir() {
            Some(d) => d,
            None => {
                eprintln!("scn_check: no scenarios/ directory found (pass one explicitly)");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "scn"))
            .collect(),
        Err(e) => {
            eprintln!("scn_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("scn_check: no .scn files under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match scn::compile(&src) {
            Ok(scenarios) => {
                for sc in &scenarios {
                    println!(
                        "{}  {}  \"{}\"  cells={} seeds={}",
                        path.display(),
                        sc.digest_hex(),
                        sc.name,
                        sc.cells().len(),
                        sc.seeds.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("{}:{e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
