//! Semantic analysis: AST to the resolved scenario IR.
//!
//! Lowering interprets every key against the real configuration structs
//! (`SystemConfig`, `TransFwKnobs`, `OverloadConfig`, `OversubConfig`,
//! `FaultPlan`, `WorkloadSpec`) and *mirrors every `validate()` assertion
//! those structs enforce as a positioned error*. That mirror is the
//! front end's core contract: a scenario that compiles will not panic
//! inside `SystemConfig::validate` or `WorkloadSpec::build` when it runs —
//! which is what lets the `scnd` server accept scenarios from untrusted
//! clients and the fuzz tests demand error-or-success, never a panic.

use std::collections::BTreeMap;

use mgpu::{FarFaultMode, PwcKind, SystemConfig, TransFwKnobs};
use sim_core::fault::ComponentEvent;
use sim_core::FaultPlan;
use uvm::{EvictPolicy, PolicyKind};
use workloads::WorkloadSpec;

use crate::ast::{Arg, File, Item, ScenarioDecl, Value, ValueKind};
use crate::{Error, Pos};

/// One resolved scenario: a base configuration plus the axes of its sweep
/// matrix (placements × workloads × fault plans, run at each seed).
///
/// The base configuration is *normalised*: its `placement`, `faults` and
/// `seed` fields are held at their defaults and applied per-cell/per-run,
/// so two scenarios that describe the same matrix compare equal however
/// their source spelled it.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The scenario's declared name.
    pub name: String,
    /// Seeds each cell runs at (nonempty).
    pub seeds: Vec<u64>,
    /// Shared base configuration (placement/faults/seed normalised out).
    pub base: SystemConfig,
    /// Placement axis; `None` means the legacy-policy default.
    pub placements: Vec<Option<PolicyKind>>,
    /// Workload axis (nonempty).
    pub workloads: Vec<WorkloadSpec>,
    /// Fault-plan axis.
    pub faults: Vec<FaultPlan>,
}

/// One cell of a scenario's sweep matrix: a complete configuration (still
/// seedless — the consumer sets `cfg.seed` per run) plus its workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Report label (`policy/workload+fault`, axes with one point elided).
    pub label: String,
    /// Complete configuration with placement and fault plan applied.
    pub cfg: SystemConfig,
    /// The workload to run.
    pub workload: WorkloadSpec,
}

impl Scenario {
    /// Expands the sweep matrix in placement → workload → fault order
    /// (the nesting order the hard-coded experiment bins used).
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for placement in &self.placements {
            for workload in &self.workloads {
                for (fi, fault) in self.faults.iter().enumerate() {
                    let mut cfg = self.base.clone();
                    cfg.placement = *placement;
                    cfg.faults = fault.clone();
                    let mut label = String::new();
                    if self.placements.len() > 1 {
                        label.push_str(cfg.placement_kind().name());
                        label.push('/');
                    }
                    label.push_str(&workload.label());
                    if self.faults.len() > 1 {
                        label.push('+');
                        label.push_str(&fault_label(fault, fi));
                    }
                    out.push(Cell {
                        label,
                        cfg,
                        workload: workload.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Short label for a fault plan within a multi-plan sweep, matching the
/// names the soak bins used for the common shapes.
fn fault_label(plan: &FaultPlan, index: usize) -> String {
    if !plan.is_active() {
        return "clean".into();
    }
    if *plan == FaultPlan::message_loss(plan.seed, plan.message_drop_prob) {
        return "loss".into();
    }
    if *plan
        == FaultPlan::message_chaos(plan.seed, plan.message_drop_prob, plan.message_delay_cycles)
    {
        return "chaos".into();
    }
    format!("faults{index}")
}

/// Lowers a parsed file into resolved scenarios.
///
/// # Errors
///
/// Returns a positioned [`Error`] on any unknown key, type mismatch,
/// duplicate binding, or violated configuration constraint.
pub fn lower(file: &File) -> Result<Vec<Scenario>, Error> {
    let mut out = Vec::new();
    for decl in &file.scenarios {
        let sc = lower_scenario(decl)?;
        if out.iter().any(|s: &Scenario| s.name == sc.name) {
            return Err(Error::at(
                decl.pos,
                format!("duplicate scenario name \"{}\"", sc.name),
            ));
        }
        out.push(sc);
    }
    Ok(out)
}

fn lower_scenario(decl: &ScenarioDecl) -> Result<Scenario, Error> {
    if decl.name.is_empty() {
        return Err(Error::at(decl.pos, "scenario name must be nonempty".into()));
    }
    // Index the body once, rejecting duplicates; interpretation below is in
    // fixed key order, independent of source order.
    let mut by_key: BTreeMap<&str, &Item> = BTreeMap::new();
    for item in &decl.items {
        if by_key.insert(item.key(), item).is_some() {
            return Err(Error::at(
                item.pos(),
                format!("duplicate key `{}` in scenario body", item.key()),
            ));
        }
    }
    const TOP_KEYS: [&str; 9] = [
        "seeds", "scale", "placement", "workload", "faults", "system", "transfw", "overload",
        "oversub",
    ];
    for item in &decl.items {
        if !TOP_KEYS.contains(&item.key()) {
            return Err(Error::at(
                item.pos(),
                format!("unknown scenario key `{}`", item.key()),
            ));
        }
    }

    let mut base = SystemConfig {
        seed: 0,
        ..SystemConfig::default()
    };
    if let Some(item) = by_key.get("system") {
        system_section(&mut base, section_items(item)?)?;
    }
    base.transfw = match by_key.get("transfw") {
        Some(item) => transfw_section(section_items(item)?, item.pos())?,
        None => None,
    };
    if let Some(item) = by_key.get("overload") {
        overload_section(&mut base.overload, section_items(item)?, item.pos())?;
    }
    if let Some(item) = by_key.get("oversub") {
        oversub_section(&mut base.oversub, section_items(item)?, item.pos())?;
    }

    let default_scale = match by_key.get("scale") {
        Some(item) => {
            let v = binding_value(item)?;
            let s = want_f64(v)?;
            if s <= 0.0 {
                return Err(Error::at(v.pos, "scale must be positive".into()));
            }
            s
        }
        None => 1.0,
    };

    let seeds = match by_key.get("seeds") {
        Some(item) => seeds_value(binding_value(item)?)?,
        None => vec![1],
    };

    let placements = match by_key.get("placement") {
        Some(item) => {
            let vs = list_of(binding_value(item)?);
            let mut ps = Vec::new();
            for v in vs {
                ps.push(placement_value(v)?);
            }
            ps
        }
        None => vec![None],
    };

    let workloads = match by_key.get("workload") {
        Some(item) => {
            let vs = list_of(binding_value(item)?);
            let mut ws = Vec::new();
            for v in vs {
                ws.push(workload_value(v, default_scale)?);
            }
            ws
        }
        None => {
            return Err(Error::at(
                decl.pos,
                format!("scenario \"{}\" declares no workload", decl.name),
            ))
        }
    };
    if workloads.is_empty() {
        return Err(Error::at(decl.pos, "workload list must be nonempty".into()));
    }

    let (faults, faults_pos) = match by_key.get("faults") {
        Some(item) => {
            let vs = list_of(binding_value(item)?);
            let mut fs = Vec::new();
            for v in vs {
                fs.push((fault_value(v)?, v.pos));
            }
            if fs.is_empty() {
                return Err(Error::at(item.pos(), "faults list must be nonempty".into()));
            }
            let pos = fs[0].1;
            (fs.into_iter().map(|(f, _)| f).collect(), pos)
        }
        None => (vec![FaultPlan::none()], decl.pos),
    };
    if placements.is_empty() {
        return Err(Error::at(decl.pos, "placement list must be nonempty".into()));
    }

    // Cross-cutting checks that need the whole scenario: fault topology
    // against the GPU count.
    for f in &faults {
        if let Err(e) = f.validate_topology(usize::from(base.gpus)) {
            return Err(Error::at(faults_pos, format!("{e}")));
        }
    }

    Ok(Scenario {
        name: decl.name.clone(),
        seeds,
        base,
        placements,
        workloads,
        faults,
    })
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn section_items(item: &Item) -> Result<&[Item], Error> {
    match item {
        Item::Section(s) => Ok(&s.items),
        Item::Binding(b) => Err(Error::at(
            b.pos,
            format!("`{}` is a section; write `{} {{ ... }}`", b.key, b.key),
        )),
    }
}

fn binding_value(item: &Item) -> Result<&Value, Error> {
    match item {
        Item::Binding(b) => Ok(&b.value),
        Item::Section(s) => Err(Error::at(
            s.pos,
            format!("`{}` is a binding; write `{} = ...`", s.name, s.name),
        )),
    }
}

/// Indexes a section body, rejecting duplicate keys.
fn index_items(items: &[Item]) -> Result<BTreeMap<&str, &Item>, Error> {
    let mut map = BTreeMap::new();
    for item in items {
        if map.insert(item.key(), item).is_some() {
            return Err(Error::at(
                item.pos(),
                format!("duplicate key `{}`", item.key()),
            ));
        }
    }
    Ok(map)
}

fn system_section(cfg: &mut SystemConfig, items: &[Item]) -> Result<(), Error> {
    let map = index_items(items)?;
    for (key, item) in &map {
        match *key {
            "ideal" => ideal_section(&mut cfg.ideal, section_items(item)?)?,
            "watchdog" => watchdog_section(&mut cfg.watchdog, section_items(item)?, item.pos())?,
            _ => {
                let v = binding_value(item)?;
                system_key(cfg, key, v)?;
            }
        }
    }
    // Mirror of `SystemConfig::validate` (the parts the section controls),
    // reported at the offending key where one exists.
    let at = |key: &str| map.get(key).map_or(Pos { line: 0, col: 0 }, |i| i.pos());
    let geom = |key: &str, ok: bool, msg: &str| -> Result<(), Error> {
        if ok {
            Ok(())
        } else {
            Err(Error::at(at(key), msg.into()))
        }
    };
    geom("gpus", cfg.gpus > 0, "need at least one GPU")?;
    geom("cus_per_gpu", cfg.cus_per_gpu > 0, "need at least one CU")?;
    geom(
        "wavefronts_per_cu",
        cfg.wavefronts_per_cu > 0,
        "need at least one wavefront",
    )?;
    geom(
        "l2_tlb_assoc",
        cfg.l2_tlb_assoc > 0 && cfg.l2_tlb_entries.is_multiple_of(cfg.l2_tlb_assoc),
        "L2 TLB entries must be a positive multiple of the associativity",
    )?;
    geom(
        "host_tlb_assoc",
        cfg.host_tlb_assoc > 0 && cfg.host_tlb_entries.is_multiple_of(cfg.host_tlb_assoc),
        "host TLB entries must be a positive multiple of the associativity",
    )?;
    geom(
        "page_table_levels",
        (2..=6).contains(&cfg.page_table_levels),
        "page table levels must be in 2..=6",
    )?;
    geom(
        "page_size_bits",
        cfg.page_size_bits == 12 || cfg.page_size_bits == 21,
        "page size must be 4 KB (12) or 2 MB (21)",
    )?;
    geom(
        "gmmu_walkers",
        cfg.gmmu_walkers > 0,
        "need at least one GMMU walker",
    )?;
    geom(
        "host_walkers",
        cfg.host_walkers > 0,
        "need at least one host walker",
    )?;
    geom(
        "pw_queue_entries",
        cfg.pw_queue_entries > 0,
        "PW queue must hold at least one entry",
    )?;
    if let Some(interval) = cfg.checkpoint_interval {
        geom(
            "checkpoint_interval",
            interval > 0,
            "checkpoint_interval must be positive (or `none`)",
        )?;
    }
    if let Some(acc) = cfg.asap {
        geom(
            "asap",
            acc > 0.0 && acc <= 1.0,
            "asap accuracy must be in (0, 1]",
        )?;
    }
    Ok(())
}

fn system_key(cfg: &mut SystemConfig, key: &str, v: &Value) -> Result<(), Error> {
    match key {
        "gpus" => cfg.gpus = want_u16(v)?,
        "cus_per_gpu" => cfg.cus_per_gpu = want_u16(v)?,
        "wavefronts_per_cu" => cfg.wavefronts_per_cu = want_u16(v)?,
        "page_size_bits" => cfg.page_size_bits = want_u32(v)?,
        "page_table_levels" => cfg.page_table_levels = want_u32(v)?,
        "l1_tlb_entries" => cfg.l1_tlb_entries = want_usize(v)?,
        "l1_tlb_latency" => cfg.l1_tlb_latency = want_u64(v)?,
        "l2_tlb_entries" => cfg.l2_tlb_entries = want_usize(v)?,
        "l2_tlb_assoc" => cfg.l2_tlb_assoc = want_usize(v)?,
        "l2_tlb_latency" => cfg.l2_tlb_latency = want_u64(v)?,
        "host_tlb_entries" => cfg.host_tlb_entries = want_usize(v)?,
        "host_tlb_assoc" => cfg.host_tlb_assoc = want_usize(v)?,
        "gmmu_walkers" => cfg.gmmu_walkers = want_usize(v)?,
        "host_walkers" => cfg.host_walkers = want_usize(v)?,
        "gmmu_pwc_entries" => cfg.gmmu_pwc_entries = want_usize(v)?,
        "host_pwc_entries" => cfg.host_pwc_entries = want_usize(v)?,
        "pwc_kind" => {
            cfg.pwc_kind = match want_ident(v)? {
                "utc" => PwcKind::Utc,
                "stc" => PwcKind::Stc,
                "infinite" => PwcKind::Infinite,
                other => {
                    return Err(Error::at(
                        v.pos,
                        format!("unknown pwc_kind `{other}` (utc, stc or infinite)"),
                    ))
                }
            }
        }
        "pw_queue_entries" => cfg.pw_queue_entries = want_usize(v)?,
        "walk_level_latency" => cfg.walk_level_latency = want_u64(v)?,
        "host_fault_overhead" => cfg.host_fault_overhead = want_u64(v)?,
        "cpu_link_latency" => cfg.cpu_link_latency = want_u64(v)?,
        "peer_link_latency" => cfg.peer_link_latency = want_u64(v)?,
        "link_bytes_per_cycle" => cfg.link_bytes_per_cycle = want_u64(v)?,
        "dram_latency" => cfg.dram_latency = want_u64(v)?,
        "cache_latency" => cfg.cache_latency = want_u64(v)?,
        "fault_mode" => {
            cfg.fault_mode = match want_ident(v)? {
                "host_mmu" => FarFaultMode::HostMmu,
                "uvm_driver" => FarFaultMode::UvmDriver,
                other => {
                    return Err(Error::at(
                        v.pos,
                        format!("unknown fault_mode `{other}` (host_mmu or uvm_driver)"),
                    ))
                }
            }
        }
        "driver_per_gpu_poll" => cfg.driver_per_gpu_poll = want_u64(v)?,
        "asap" => cfg.asap = want_opt(v, want_f64)?,
        "least_tlb" => cfg.least_tlb = want_bool(v)?,
        "sanitize" => cfg.sanitize = want_bool(v)?,
        "checkpoint_interval" => cfg.checkpoint_interval = want_opt(v, want_u64)?,
        other => {
            return Err(Error::at(
                v.pos,
                format!("unknown system key `{other}`"),
            ))
        }
    }
    Ok(())
}

fn ideal_section(ideal: &mut mgpu::IdealKnobs, items: &[Item]) -> Result<(), Error> {
    for (key, item) in index_items(items)? {
        let v = binding_value(item)?;
        match key {
            "infinite_walkers" => ideal.infinite_walkers = want_bool(v)?,
            "zero_migration_latency" => ideal.zero_migration_latency = want_bool(v)?,
            "no_local_faults" => ideal.no_local_faults = want_bool(v)?,
            other => {
                return Err(Error::at(v.pos, format!("unknown ideal key `{other}`")));
            }
        }
    }
    Ok(())
}

fn watchdog_section(
    wd: &mut mgpu::WatchdogConfig,
    items: &[Item],
    pos: Pos,
) -> Result<(), Error> {
    for (key, item) in index_items(items)? {
        let v = binding_value(item)?;
        match key {
            "enabled" => wd.enabled = want_bool(v)?,
            "request_timeout" => wd.request_timeout = want_u64(v)?,
            "max_retries" => wd.max_retries = want_u32(v)?,
            "liveness_interval" => wd.liveness_interval = want_u64(v)?,
            "max_cycles" => wd.max_cycles = want_opt(v, want_u64)?,
            other => {
                return Err(Error::at(v.pos, format!("unknown watchdog key `{other}`")));
            }
        }
    }
    if wd.enabled {
        if wd.request_timeout == 0 {
            return Err(Error::at(pos, "watchdog request_timeout must be positive".into()));
        }
        if wd.liveness_interval == 0 {
            return Err(Error::at(pos, "watchdog liveness_interval must be positive".into()));
        }
    }
    Ok(())
}

fn transfw_section(items: &[Item], pos: Pos) -> Result<Option<TransFwKnobs>, Error> {
    let mut knobs = TransFwKnobs::full();
    let mut enabled = true;
    for (key, item) in index_items(items)? {
        let v = binding_value(item)?;
        match key {
            "enabled" => enabled = want_bool(v)?,
            "gmmu_short_circuit" => knobs.gmmu_short_circuit = want_bool(v)?,
            "host_forwarding" => knobs.host_forwarding = want_bool(v)?,
            "prt_fingerprints" => knobs.config.prt_fingerprints = want_usize(v)?,
            "prt_fp_bits" => knobs.config.prt_fp_bits = want_u32(v)?,
            "prt_slots" => knobs.config.prt_slots = want_usize(v)?,
            "ft_fingerprints" => knobs.config.ft_fingerprints = want_usize(v)?,
            "ft_fp_bits" => knobs.config.ft_fp_bits = want_u32(v)?,
            "ft_slots" => knobs.config.ft_slots = want_usize(v)?,
            "vpn_mask_bits" => knobs.config.vpn_mask_bits = want_u32(v)?,
            "forward_threshold" => knobs.config.forward_threshold = want_f64(v)?,
            other => {
                return Err(Error::at(v.pos, format!("unknown transfw key `{other}`")));
            }
        }
    }
    if !enabled {
        return Ok(None);
    }
    let c = &knobs.config;
    let check = |ok: bool, msg: &str| -> Result<(), Error> {
        if ok {
            Ok(())
        } else {
            Err(Error::at(pos, msg.into()))
        }
    };
    check(c.prt_slots > 0 && c.ft_slots > 0, "filter slot counts must be positive")?;
    check(
        c.prt_fingerprints >= c.prt_slots && c.ft_fingerprints >= c.ft_slots,
        "filters need at least one bucket of fingerprints",
    )?;
    check(
        (1..=24).contains(&c.prt_fp_bits) && (1..=24).contains(&c.ft_fp_bits),
        "fingerprint widths must be in 1..=24 bits",
    )?;
    check(c.vpn_mask_bits <= 24, "vpn_mask_bits must be at most 24")?;
    check(
        c.forward_threshold > 0.0 && c.forward_threshold.is_finite(),
        "forward_threshold must be positive",
    )?;
    Ok(Some(knobs))
}

fn overload_section(
    ov: &mut mgpu::OverloadConfig,
    items: &[Item],
    pos: Pos,
) -> Result<(), Error> {
    for (key, item) in index_items(items)? {
        let v = binding_value(item)?;
        match key {
            "enabled" => ov.enabled = want_bool(v)?,
            "host_queue_high" => ov.host_queue_high = want_usize(v)?,
            "host_queue_low" => ov.host_queue_low = want_usize(v)?,
            "gpu_queue_high" => ov.gpu_queue_high = want_usize(v)?,
            "gpu_queue_low" => ov.gpu_queue_low = want_usize(v)?,
            "mshr_high" => ov.mshr_high = want_usize(v)?,
            "mshr_low" => ov.mshr_low = want_usize(v)?,
            "backoff_base" => ov.backoff_base = want_u64(v)?,
            "backoff_cap" => ov.backoff_cap = want_u64(v)?,
            "retry_budget" => ov.retry_budget = want_u64(v)?,
            "retry_refill_permille" => ov.retry_refill_permille = want_u64(v)?,
            "breaker_window" => ov.breaker_window = want_u32(v)?,
            "breaker_failure_permille" => ov.breaker_failure_permille = want_u32(v)?,
            "breaker_min_samples" => ov.breaker_min_samples = want_u32(v)?,
            "breaker_open_cycles" => ov.breaker_open_cycles = want_u64(v)?,
            "breaker_probes" => ov.breaker_probes = want_usize(v)?,
            "peer_backlog_high" => ov.peer_backlog_high = want_u64(v)?,
            other => {
                return Err(Error::at(v.pos, format!("unknown overload key `{other}`")));
            }
        }
    }
    // Mirror of `OverloadConfig::validate` (which is only consulted when
    // the subsystem is enabled).
    if ov.enabled {
        let check = |ok: bool, msg: &str| -> Result<(), Error> {
            if ok {
                Ok(())
            } else {
                Err(Error::at(pos, msg.into()))
            }
        };
        check(ov.host_queue_low <= ov.host_queue_high, "host queue watermarks inverted")?;
        check(ov.gpu_queue_low <= ov.gpu_queue_high, "gpu queue watermarks inverted")?;
        check(ov.mshr_low <= ov.mshr_high, "MSHR watermarks inverted")?;
        check(ov.backoff_base > 0, "backoff base must be positive")?;
        check(ov.backoff_cap >= ov.backoff_base, "backoff cap below base")?;
        check(ov.retry_budget > 0, "retry budget must be positive")?;
        check(
            ov.retry_refill_permille <= 1000,
            "retry refill above 1000 permille defeats the budget",
        )?;
        check(ov.breaker_window > 0, "breaker window must be positive")?;
        check(
            ov.breaker_failure_permille <= 1000,
            "breaker failure rate is a permille",
        )?;
        check(
            ov.breaker_min_samples > 0 && ov.breaker_min_samples <= ov.breaker_window,
            "breaker min samples must fit the window",
        )?;
        check(ov.breaker_probes > 0, "need at least one half-open probe")?;
    }
    Ok(())
}

fn oversub_section(
    os: &mut mgpu::OversubConfig,
    items: &[Item],
    pos: Pos,
) -> Result<(), Error> {
    for (key, item) in index_items(items)? {
        let v = binding_value(item)?;
        match key {
            "enabled" => os.enabled = want_bool(v)?,
            "capacity_pages" => os.capacity_pages = want_usize(v)?,
            "policy" => {
                os.policy = match want_ident(v)? {
                    "lru" => EvictPolicy::Lru,
                    "access_counter" => EvictPolicy::AccessCounter,
                    other => {
                        return Err(Error::at(
                            v.pos,
                            format!("unknown eviction policy `{other}` (lru or access_counter)"),
                        ))
                    }
                }
            }
            "thrash_high" => os.thrash_high = want_usize(v)?,
            "thrash_low" => os.thrash_low = want_usize(v)?,
            "refault_window" => os.refault_window = want_u64(v)?,
            "hot_protect" => os.hot_protect = want_usize(v)?,
            other => {
                return Err(Error::at(v.pos, format!("unknown oversub key `{other}`")));
            }
        }
    }
    // Mirror of `OversubConfig::validate`.
    if os.enabled {
        let check = |ok: bool, msg: &str| -> Result<(), Error> {
            if ok {
                Ok(())
            } else {
                Err(Error::at(pos, msg.into()))
            }
        };
        check(os.capacity_pages > 0, "capacity must be positive")?;
        check(os.thrash_low <= os.thrash_high, "thrash watermarks inverted")?;
        check(os.refault_window > 0, "refault window must be positive")?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Axis values
// ---------------------------------------------------------------------------

fn seeds_value(v: &Value) -> Result<Vec<u64>, Error> {
    match &v.kind {
        ValueKind::Int(n) => {
            if *n == 0 {
                return Err(Error::at(v.pos, "seed count must be positive".into()));
            }
            if *n > 100_000 {
                return Err(Error::at(v.pos, "seed count is implausibly large".into()));
            }
            Ok((1..=*n).collect())
        }
        ValueKind::List(vs) => {
            if vs.is_empty() {
                return Err(Error::at(v.pos, "seed list must be nonempty".into()));
            }
            vs.iter().map(want_u64).collect()
        }
        _ => Err(Error::at(
            v.pos,
            format!("expected a seed count or seed list, found {}", v.describe()),
        )),
    }
}

fn placement_value(v: &Value) -> Result<Option<PolicyKind>, Error> {
    let (name, args): (&str, &[Arg]) = match &v.kind {
        ValueKind::Ident(s) => (s, &[]),
        ValueKind::Call { name, args } => (name, args),
        _ => {
            return Err(Error::at(
                v.pos,
                format!("expected a placement policy, found {}", v.describe()),
            ))
        }
    };
    match name {
        "legacy" => {
            no_args(name, args)?;
            Ok(None)
        }
        "first_touch" => {
            no_args(name, args)?;
            Ok(Some(PolicyKind::FirstTouch))
        }
        "read_duplicate" => {
            no_args(name, args)?;
            Ok(Some(PolicyKind::ReadDuplicate))
        }
        "delayed_migration" => {
            let m = bind_args(name, v.pos, args, &["threshold"])?;
            let threshold = want_u32(req(&m, name, v.pos, "threshold")?)?;
            if threshold == 0 {
                return Err(Error::at(v.pos, "migration threshold must be positive".into()));
            }
            Ok(Some(PolicyKind::DelayedMigration { threshold }))
        }
        "prefetch_neighborhood" => {
            let m = bind_args(name, v.pos, args, &["radius"])?;
            let radius = want_u32(req(&m, name, v.pos, "radius")?)?;
            Ok(Some(PolicyKind::PrefetchNeighborhood { radius }))
        }
        other => Err(Error::at(
            v.pos,
            format!("unknown placement policy `{other}`"),
        )),
    }
}

fn workload_value(v: &Value, default_scale: f64) -> Result<WorkloadSpec, Error> {
    let (name, args): (&str, &[Arg]) = match &v.kind {
        ValueKind::Ident(s) => (s, &[]),
        ValueKind::Call { name, args } => (name, args),
        _ => {
            return Err(Error::at(
                v.pos,
                format!("expected a workload, found {}", v.describe()),
            ))
        }
    };
    let scale_of = |m: &BTreeMap<&'static str, &Value>| -> Result<f64, Error> {
        match m.get("scale") {
            Some(v) => {
                let s = want_f64(v)?;
                if s <= 0.0 {
                    return Err(Error::at(v.pos, "scale must be positive".into()));
                }
                Ok(s)
            }
            None => Ok(default_scale),
        }
    };
    match name {
        "app" => {
            let m = bind_args(name, v.pos, args, &["name", "scale"])?;
            let app_name = want_str(req(&m, name, v.pos, "name")?)?;
            let scale = scale_of(&m)?;
            WorkloadSpec::app(app_name, scale).ok_or_else(|| {
                Error::at(v.pos, format!("unknown application \"{app_name}\""))
            })
        }
        "uniform" => {
            let m = bind_args(
                name,
                v.pos,
                args,
                &["pages", "ctas", "accesses", "write_frac", "scale"],
            )?;
            let spec = WorkloadSpec::Uniform {
                pages: want_u64(req(&m, name, v.pos, "pages")?)?,
                ctas: want_usize(req(&m, name, v.pos, "ctas")?)?,
                accesses_per_cta: want_usize(req(&m, name, v.pos, "accesses")?)?,
                write_frac: match m.get("write_frac") {
                    Some(v) => want_f64(v)?,
                    None => 0.2,
                },
                scale: scale_of(&m)?,
            };
            if !spec.is_valid() {
                return Err(Error::at(
                    v.pos,
                    "uniform workload needs positive pages/ctas/accesses and write_frac in [0, 1]"
                        .into(),
                ));
            }
            Ok(spec)
        }
        "phase_shift" => {
            let m = bind_args(name, v.pos, args, &["scale"])?;
            Ok(WorkloadSpec::PhaseShift { scale: scale_of(&m)? })
        }
        "burst" => {
            let m = bind_args(name, v.pos, args, &["scale", "load"])?;
            let load = match m.get("load") {
                Some(v) => {
                    let l = want_u64(v)?;
                    if l == 0 {
                        return Err(Error::at(v.pos, "load multiplier must be positive".into()));
                    }
                    l
                }
                None => 1,
            };
            Ok(WorkloadSpec::Burst { scale: scale_of(&m)?, load })
        }
        "oversub_shift" => {
            let m = bind_args(name, v.pos, args, &["scale"])?;
            Ok(WorkloadSpec::OversubShift { scale: scale_of(&m)? })
        }
        other => Err(Error::at(v.pos, format!("unknown workload `{other}`"))),
    }
}

fn fault_value(v: &Value) -> Result<FaultPlan, Error> {
    let (name, args): (&str, &[Arg]) = match &v.kind {
        ValueKind::Ident(s) => (s, &[]),
        ValueKind::Call { name, args } => (name, args),
        _ => {
            return Err(Error::at(
                v.pos,
                format!("expected a fault plan, found {}", v.describe()),
            ))
        }
    };
    let plan = match name {
        "none" => {
            no_args(name, args)?;
            FaultPlan::none()
        }
        "message_loss" => {
            let m = bind_args(name, v.pos, args, &["seed", "p"])?;
            FaultPlan::message_loss(
                want_u64(req(&m, name, v.pos, "seed")?)?,
                want_f64(req(&m, name, v.pos, "p")?)?,
            )
        }
        "message_chaos" => {
            let m = bind_args(name, v.pos, args, &["seed", "p", "delay"])?;
            FaultPlan::message_chaos(
                want_u64(req(&m, name, v.pos, "seed")?)?,
                want_f64(req(&m, name, v.pos, "p")?)?,
                want_u64(req(&m, name, v.pos, "delay")?)?,
            )
        }
        "plan" => {
            let m = bind_args(
                name,
                v.pos,
                args,
                &[
                    "seed",
                    "drop",
                    "delay_p",
                    "delay",
                    "dup",
                    "stall_p",
                    "stall",
                    "table_drop",
                    "pollution",
                    "burst_period",
                    "burst_len",
                    "burst_extra",
                    "events",
                ],
            )?;
            let mut p = FaultPlan::none();
            if let Some(v) = m.get("seed") {
                p.seed = want_u64(v)?;
            }
            if let Some(v) = m.get("drop") {
                p.message_drop_prob = want_f64(v)?;
            }
            if let Some(v) = m.get("delay_p") {
                p.message_delay_prob = want_f64(v)?;
            }
            if let Some(v) = m.get("delay") {
                p.message_delay_cycles = want_u64(v)?;
            }
            if let Some(v) = m.get("dup") {
                p.message_duplicate_prob = want_f64(v)?;
            }
            if let Some(v) = m.get("stall_p") {
                p.walker_stall_prob = want_f64(v)?;
            }
            if let Some(v) = m.get("stall") {
                p.walker_stall_cycles = want_u64(v)?;
            }
            if let Some(v) = m.get("table_drop") {
                p.table_update_drop_prob = want_f64(v)?;
            }
            if let Some(v) = m.get("pollution") {
                p.table_pollution = want_usize(v)?;
            }
            if let Some(v) = m.get("burst_period") {
                p.host_burst_period = want_u64(v)?;
            }
            if let Some(v) = m.get("burst_len") {
                p.host_burst_len = want_u64(v)?;
            }
            if let Some(v) = m.get("burst_extra") {
                p.host_burst_extra = want_u64(v)?;
            }
            if let Some(v) = m.get("events") {
                for ev in list_of(v) {
                    p.component_events.push(event_value(ev)?);
                }
            }
            p
        }
        other => return Err(Error::at(v.pos, format!("unknown fault plan `{other}`"))),
    };
    if let Err(e) = plan.validate() {
        return Err(Error::at(v.pos, format!("{e}")));
    }
    Ok(plan)
}

fn event_value(v: &Value) -> Result<ComponentEvent, Error> {
    let ValueKind::Call { name, args } = &v.kind else {
        return Err(Error::at(
            v.pos,
            format!("expected a component event call, found {}", v.describe()),
        ));
    };
    match name.as_str() {
        "gpu_offline" => {
            let m = bind_args(name, v.pos, args, &["gpu", "at", "dur"])?;
            Ok(ComponentEvent::GpuOffline {
                gpu: want_usize(req(&m, name, v.pos, "gpu")?)?,
                at_cycle: want_u64(req(&m, name, v.pos, "at")?)?,
                duration: want_u64(req(&m, name, v.pos, "dur")?)?,
            })
        }
        "link_partition" => {
            let m = bind_args(name, v.pos, args, &["a", "b", "at", "dur"])?;
            Ok(ComponentEvent::LinkPartition {
                a: want_usize(req(&m, name, v.pos, "a")?)?,
                b: want_usize(req(&m, name, v.pos, "b")?)?,
                at_cycle: want_u64(req(&m, name, v.pos, "at")?)?,
                duration: want_u64(req(&m, name, v.pos, "dur")?)?,
            })
        }
        "host_failover" => {
            let m = bind_args(name, v.pos, args, &["at", "stall"])?;
            Ok(ComponentEvent::HostMmuFailover {
                at_cycle: want_u64(req(&m, name, v.pos, "at")?)?,
                stall: want_u64(req(&m, name, v.pos, "stall")?)?,
            })
        }
        other => Err(Error::at(
            v.pos,
            format!("unknown component event `{other}`"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Value and argument plumbing
// ---------------------------------------------------------------------------

/// A non-list value is a one-element axis; a list is itself.
fn list_of(v: &Value) -> Vec<&Value> {
    match &v.kind {
        ValueKind::List(vs) => vs.iter().collect(),
        _ => vec![v],
    }
}

/// Binds a call's arguments against its parameter names: positional
/// arguments fill `allowed` in order, named arguments bind by name, and
/// duplicates/unknowns/excess are errors.
fn bind_args<'a>(
    call: &str,
    pos: Pos,
    args: &'a [Arg],
    allowed: &[&'static str],
) -> Result<BTreeMap<&'static str, &'a Value>, Error> {
    let mut map: BTreeMap<&'static str, &'a Value> = BTreeMap::new();
    let mut next_positional = 0usize;
    for arg in args {
        let slot: &'static str = match &arg.name {
            Some(n) => match allowed.iter().find(|a| **a == n.as_str()) {
                Some(a) => a,
                None => {
                    return Err(Error::at(
                        arg.pos,
                        format!("`{call}` has no parameter `{n}`"),
                    ))
                }
            },
            None => {
                let Some(a) = allowed.get(next_positional) else {
                    return Err(Error::at(
                        arg.pos,
                        format!("too many arguments to `{call}`"),
                    ));
                };
                next_positional += 1;
                a
            }
        };
        if map.insert(slot, &arg.value).is_some() {
            return Err(Error::at(
                arg.pos,
                format!("duplicate argument `{slot}` to `{call}`"),
            ));
        }
    }
    let _ = pos;
    Ok(map)
}

fn req<'a>(
    m: &BTreeMap<&'static str, &'a Value>,
    call: &str,
    pos: Pos,
    key: &str,
) -> Result<&'a Value, Error> {
    m.get(key)
        .copied()
        .ok_or_else(|| Error::at(pos, format!("`{call}` requires `{key} = ...`")))
}

fn no_args(call: &str, args: &[Arg]) -> Result<(), Error> {
    match args.first() {
        None => Ok(()),
        Some(a) => Err(Error::at(a.pos, format!("`{call}` takes no arguments"))),
    }
}

fn want_u64(v: &Value) -> Result<u64, Error> {
    match v.kind {
        ValueKind::Int(n) => Ok(n),
        _ => Err(Error::at(
            v.pos,
            format!("expected an integer, found {}", v.describe()),
        )),
    }
}

fn want_usize(v: &Value) -> Result<usize, Error> {
    usize::try_from(want_u64(v)?)
        .map_err(|_| Error::at(v.pos, "integer too large for this platform".into()))
}

fn want_u32(v: &Value) -> Result<u32, Error> {
    u32::try_from(want_u64(v)?).map_err(|_| Error::at(v.pos, "integer exceeds 32 bits".into()))
}

fn want_u16(v: &Value) -> Result<u16, Error> {
    u16::try_from(want_u64(v)?).map_err(|_| Error::at(v.pos, "integer exceeds 16 bits".into()))
}

fn want_f64(v: &Value) -> Result<f64, Error> {
    match v.kind {
        ValueKind::Float(x) => Ok(x),
        ValueKind::Int(n) => Ok(n as f64),
        _ => Err(Error::at(
            v.pos,
            format!("expected a number, found {}", v.describe()),
        )),
    }
}

fn want_bool(v: &Value) -> Result<bool, Error> {
    match &v.kind {
        ValueKind::Ident(s) if s == "true" => Ok(true),
        ValueKind::Ident(s) if s == "false" => Ok(false),
        _ => Err(Error::at(
            v.pos,
            format!("expected `true` or `false`, found {}", v.describe()),
        )),
    }
}

fn want_str(v: &Value) -> Result<&str, Error> {
    match &v.kind {
        ValueKind::Str(s) => Ok(s),
        _ => Err(Error::at(
            v.pos,
            format!("expected a string, found {}", v.describe()),
        )),
    }
}

fn want_ident(v: &Value) -> Result<&str, Error> {
    match &v.kind {
        ValueKind::Ident(s) => Ok(s),
        _ => Err(Error::at(
            v.pos,
            format!("expected an identifier, found {}", v.describe()),
        )),
    }
}

/// `none` or a value parsed by `inner`.
fn want_opt<T>(
    v: &Value,
    inner: impl Fn(&Value) -> Result<T, Error>,
) -> Result<Option<T>, Error> {
    match &v.kind {
        ValueKind::Ident(s) if s == "none" => Ok(None),
        _ => inner(v).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_one;

    #[test]
    fn minimal_scenario_fills_table_ii_defaults() {
        let sc = compile_one(r#"scenario "s" { workload = app(name = "KM") }"#).unwrap();
        assert_eq!(sc.seeds, vec![1]);
        assert_eq!(sc.base.gpus, 4);
        assert_eq!(sc.base.seed, 0, "seed is normalised out of the base");
        assert!(sc.base.transfw.is_none());
        assert_eq!(sc.placements, vec![None]);
        assert_eq!(
            sc.workloads,
            vec![WorkloadSpec::app("KM", 1.0).unwrap()]
        );
        assert_eq!(sc.faults, vec![FaultPlan::none()]);
    }

    #[test]
    fn default_scale_flows_into_workloads() {
        let sc = compile_one(
            r#"scenario "s" {
                 scale = 0.1
                 workload = [app(name = "AES"), phase_shift, burst(scale = 0.5, load = 4)]
               }"#,
        )
        .unwrap();
        assert_eq!(sc.workloads[0].scale(), 0.1);
        assert_eq!(sc.workloads[1].scale(), 0.1);
        assert_eq!(sc.workloads[2].scale(), 0.5, "explicit scale wins");
    }

    #[test]
    fn the_policy_sweep_matrix_lowers_exactly() {
        let sc = compile_one(
            r#"scenario "sweep" {
                 seeds = 2
                 scale = 0.1
                 transfw { enabled = true }
                 placement = [first_touch, delayed_migration(threshold = 4),
                              read_duplicate, prefetch_neighborhood(radius = 3)]
                 workload = [app(name = "AES"), app(name = "KM"),
                             app(name = "PR"), phase_shift]
               }"#,
        )
        .unwrap();
        assert_eq!(sc.seeds, vec![1, 2]);
        assert_eq!(sc.base.transfw, Some(TransFwKnobs::full()));
        assert_eq!(sc.placements.len(), 4);
        assert_eq!(
            sc.placements[1],
            Some(PolicyKind::DelayedMigration { threshold: 4 })
        );
        let cells = sc.cells();
        assert_eq!(cells.len(), 16);
        assert_eq!(cells[0].label, "first-touch/AES");
        assert_eq!(cells[0].cfg.placement, Some(PolicyKind::FirstTouch));
        assert_eq!(cells[15].label, "prefetch-neighborhood/PhaseShift");
    }

    #[test]
    fn fault_axis_and_events() {
        let sc = compile_one(
            r#"scenario "s" {
                 workload = phase_shift
                 faults = [none, message_loss(seed = 38, p = 0.02),
                           plan(seed = 9, events = [gpu_offline(gpu = 1, at = 1000, dur = 500)])]
               }"#,
        )
        .unwrap();
        assert_eq!(sc.faults.len(), 3);
        assert_eq!(sc.faults[1], FaultPlan::message_loss(38, 0.02));
        assert_eq!(
            sc.faults[2].component_events,
            vec![ComponentEvent::GpuOffline { gpu: 1, at_cycle: 1000, duration: 500 }]
        );
        let cells = sc.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].label, "PhaseShift+clean");
        assert_eq!(cells[1].label, "PhaseShift+loss");
        assert_eq!(cells[2].label, "PhaseShift+faults2");
    }

    #[test]
    fn validation_mirrors_are_errors_not_panics() {
        let cases: &[(&str, &str)] = &[
            (r#"scenario "s" { workload = phase_shift system { gpus = 0 } }"#, "at least one GPU"),
            (
                r#"scenario "s" { workload = phase_shift system { l2_tlb_entries = 100 } }"#,
                "associativity",
            ),
            (
                r#"scenario "s" { workload = phase_shift system { page_size_bits = 13 } }"#,
                "page size",
            ),
            (
                r#"scenario "s" { workload = phase_shift faults = message_loss(seed = 1, p = 1.5) }"#,
                "not in [0, 1]",
            ),
            (
                r#"scenario "s" { workload = phase_shift faults = plan(events = [gpu_offline(gpu = 9, at = 1, dur = 1)]) }"#,
                "",
            ),
            (
                r#"scenario "s" { workload = phase_shift overload { enabled = true host_queue_low = 99 } }"#,
                "inverted",
            ),
            (
                r#"scenario "s" { workload = phase_shift oversub { enabled = true capacity_pages = 0 } }"#,
                "capacity",
            ),
            (r#"scenario "s" { workload = app(name = "nope") }"#, "unknown application"),
            (r#"scenario "s" { workload = phase_shift(scale = 0.0) }"#, "positive"),
            (r#"scenario "s" { workload = phase_shift seeds = 0 }"#, "positive"),
            (r#"scenario "s" { workload = phase_shift gpus = 8 }"#, "unknown scenario key"),
            (r#"scenario "s" { workload = phase_shift workload = burst }"#, "duplicate key"),
        ];
        for (src, needle) in cases {
            let e = compile_one(src).expect_err(src);
            assert!(
                e.msg.contains(needle),
                "source {src}: error `{e}` does not mention `{needle}`"
            );
        }
    }

    #[test]
    fn positional_and_named_args_mix() {
        let sc = compile_one(
            r#"scenario "s" { workload = uniform(512, 32, 64, write_frac = 0.3, scale = 1.0) }"#,
        )
        .unwrap();
        assert_eq!(
            sc.workloads[0],
            WorkloadSpec::Uniform {
                pages: 512,
                ctas: 32,
                accesses_per_cta: 64,
                write_frac: 0.3,
                scale: 1.0
            }
        );
    }

    #[test]
    fn disabled_transfw_section_is_baseline() {
        let sc = compile_one(
            r#"scenario "s" { workload = phase_shift transfw { enabled = false } }"#,
        )
        .unwrap();
        assert!(sc.base.transfw.is_none());
    }
}
