//! Round-trip and digest-stability properties over the committed
//! scenarios: parse → print → parse is a fixed point, and the digest is a
//! function of scenario *semantics*, not formatting.

use sim_core::SimRng;

fn committed_sources() -> Vec<(String, String)> {
    let dir = scn::find_scenarios_dir().expect("scenarios/ directory exists");
    let mut out = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("readable scenarios dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable scenario");
        out.push((path.display().to_string(), src));
    }
    assert!(out.len() >= 4, "expected the committed scenarios");
    out
}

/// parse(print(parse(src))) == parse(src), with an identical digest, for
/// every committed scenario — and the canonical form is itself a fixed
/// point of printing.
#[test]
fn canonical_print_is_a_fixed_point_over_committed_scenarios() {
    for (path, src) in committed_sources() {
        let scenarios = scn::compile(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        for sc in scenarios {
            let canon = sc.canonical();
            let reparsed =
                scn::compile_one(&canon).unwrap_or_else(|e| panic!("{path}/{}: {e}", sc.name));
            assert_eq!(sc, reparsed, "{path}/{}: IR round-trip", sc.name);
            assert_eq!(sc.digest(), reparsed.digest(), "{path}/{}", sc.name);
            assert_eq!(
                canon,
                reparsed.canonical(),
                "{path}/{}: canonical form must be a printing fixed point",
                sc.name
            );
        }
    }
}

/// Seeded formatting fuzz: random whitespace and comment injection at
/// token boundaries never changes the digest. This is the cache-key
/// soundness property — two sources that differ only in formatting must
/// hit the same cache entry.
#[test]
fn formatting_noise_never_changes_the_digest() {
    let mut rng = SimRng::new(0x00d1_6e57);
    for (path, src) in committed_sources() {
        let base: Vec<u64> = scn::compile(&src)
            .unwrap_or_else(|e| panic!("{path}: {e}"))
            .iter()
            .map(scn::Scenario::digest)
            .collect();
        for _ in 0..50 {
            let mut noisy = String::new();
            for line in src.lines() {
                // Leading indentation noise.
                for _ in 0..rng.gen_index(4) {
                    noisy.push(if rng.chance(0.5) { ' ' } else { '\t' });
                }
                noisy.push_str(line);
                // Trailing comment noise on structural lines only: inside
                // a multi-line list a comment would be harmless too, but
                // keeping it unconditional is simplest and still valid.
                if rng.chance(0.3) {
                    noisy.push_str("  # noise");
                }
                noisy.push('\n');
                if rng.chance(0.2) {
                    noisy.push('\n');
                }
            }
            let digests: Vec<u64> = scn::compile(&noisy)
                .unwrap_or_else(|e| panic!("{path} with formatting noise: {e}"))
                .iter()
                .map(scn::Scenario::digest)
                .collect();
            assert_eq!(base, digests, "{path}: formatting noise changed a digest");
        }
    }
}

/// Digests are unique across every committed scenario (16-cell sweeps,
/// soak matrices, eight oversubscription points): no accidental
/// collisions in the cache keyspace we actually ship.
#[test]
fn committed_scenario_digests_are_distinct() {
    let mut digests = Vec::new();
    for (path, src) in committed_sources() {
        for sc in scn::compile(&src).unwrap_or_else(|e| panic!("{path}: {e}")) {
            digests.push((sc.digest(), format!("{path}/{}", sc.name)));
        }
    }
    for i in 0..digests.len() {
        for j in i + 1..digests.len() {
            assert_ne!(
                digests[i].0, digests[j].0,
                "digest collision: {} vs {}",
                digests[i].1, digests[j].1
            );
        }
    }
}

/// Sugar desugars to the same digest as its expansion: `seeds = 2` is
/// exactly `seeds = [1, 2]`, and a scalar axis is a one-element list.
#[test]
fn sugar_and_expansion_share_a_digest() {
    let sugared = r#"
        scenario "s" {
            seeds = 2
            placement = first_touch
            workload = phase_shift
        }
    "#;
    let expanded = r#"
        scenario "s" {
            seeds = [1, 2]
            placement = [first_touch]
            workload = [phase_shift(scale = 1.0)]
            faults = [none]
        }
    "#;
    let a = scn::compile_one(sugared).expect("sugared compiles");
    let b = scn::compile_one(expanded).expect("expanded compiles");
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
}

/// One-token semantic edits each produce a distinct digest: the cache can
/// never serve a stale result for an edited scenario.
#[test]
fn single_token_semantic_edits_change_the_digest() {
    let base = r#"
        scenario "s" {
            seeds = 2
            scale = 0.1
            transfw { enabled = true }
            placement = first_touch
            workload = app(name = "KM")
        }
    "#;
    let d0 = scn::compile_one(base).expect("base compiles").digest();
    let edits = [
        base.replace("seeds = 2", "seeds = 3"),
        base.replace("scale = 0.1", "scale = 0.2"),
        base.replace("enabled = true", "enabled = false"),
        base.replace("first_touch", "read_duplicate"),
        base.replace("\"KM\"", "\"PR\""),
    ];
    let mut seen = vec![d0];
    for edit in &edits {
        let d = scn::compile_one(edit).expect("edited scenario compiles").digest();
        assert!(!seen.contains(&d), "semantic edit failed to change the digest:\n{edit}");
        seen.push(d);
    }
}
