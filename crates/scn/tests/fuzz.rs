//! Seeded pseudo-property fuzzing of the `.scn` front end.
//!
//! The contract under test: `scn::compile` (lexer → parser → sema) returns
//! a positioned [`scn::Error`] for every malformed input and *never*
//! panics — the daemon feeds untrusted scenario text straight into it. The
//! generators are seeded with [`sim_core::SimRng`], so every run explores
//! the same inputs and a failure reproduces deterministically.

use sim_core::SimRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compiles `src`, converting a panic into a test failure that prints the
/// offending input.
fn must_not_panic(src: &str) {
    let r = catch_unwind(AssertUnwindSafe(|| {
        let _ = scn::compile(src);
    }));
    assert!(r.is_ok(), "compile panicked on input:\n{src}");
}

/// Random character soup over an alphabet biased toward the grammar's
/// structural characters, so the parser sees deeply confusing but
/// plausible-looking streams.
#[test]
fn random_character_soup_never_panics() {
    const ALPHABET: &[char] = &[
        '{', '}', '[', ']', '(', ')', '=', ',', '"', '\\', '#', '/', '.', '_', '-', '+', 'e',
        'E', 'x', '0', '1', '9', 'a', 'z', 'A', 'Z', ' ', '\t', '\n', 'é', '∞', '\u{0}',
    ];
    let mut rng = SimRng::new(0x5c4e_f022);
    for _ in 0..4_000 {
        let len = rng.gen_index(200);
        let src: String = (0..len)
            .map(|_| ALPHABET[rng.gen_index(ALPHABET.len())])
            .collect();
        must_not_panic(&src);
    }
}

/// Random streams of syntactically valid *tokens* in random order: every
/// token lexes, so this drives the parser and sema past the lexer into
/// every recovery path.
#[test]
fn random_token_streams_never_panic() {
    const TOKENS: &[&str] = &[
        "scenario", "system", "transfw", "overload", "oversub", "seeds", "scale", "placement",
        "workload", "faults", "enabled", "none", "true", "false", "gpus", "app", "name",
        "plan", "events", "gpu_offline", "uniform", "burst", "ideal", "watchdog", "{", "}",
        "[", "]", "(", ")", "=", ",", "\"KM\"", "\"x\"", "0", "1", "2", "4096", "0.1",
        "1e3", "100000000000", "0.0",
    ];
    let mut rng = SimRng::new(0x0070_c311);
    for _ in 0..4_000 {
        let len = rng.gen_index(80);
        let src: String = (0..len)
            .map(|_| TOKENS[rng.gen_index(TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        must_not_panic(&src);
    }
}

/// Single random mutations (delete / insert / duplicate / replace one
/// byte position's character) of every committed scenario: near-valid
/// inputs stress the deepest sema paths. When a mutant still compiles, its
/// canonical form must round-trip with an identical digest.
#[test]
fn mutated_committed_scenarios_never_panic() {
    let dir = scn::find_scenarios_dir().expect("scenarios/ directory exists");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("readable scenarios dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "scn") {
            sources.push(std::fs::read_to_string(&path).expect("readable scenario"));
        }
    }
    assert!(sources.len() >= 4, "expected the committed scenarios");

    const INSERTS: &[char] = &['{', '}', '=', '"', ',', '(', ')', '[', ']', '0', '9', 'x', '.'];
    let mut rng = SimRng::new(0x9e37_79b9);
    for src in &sources {
        let chars: Vec<char> = src.chars().collect();
        for _ in 0..400 {
            let at = rng.gen_index(chars.len());
            let mut mutant: Vec<char> = chars.clone();
            match rng.gen_index(4) {
                0 => {
                    mutant.remove(at);
                }
                1 => mutant.insert(at, INSERTS[rng.gen_index(INSERTS.len())]),
                2 => {
                    let c = mutant[at];
                    mutant.insert(at, c);
                }
                _ => mutant[at] = INSERTS[rng.gen_index(INSERTS.len())],
            }
            let mutant: String = mutant.into_iter().collect();
            let r = catch_unwind(AssertUnwindSafe(|| scn::compile(&mutant)));
            let Ok(outcome) = r else {
                panic!("compile panicked on mutant:\n{mutant}");
            };
            if let Ok(scenarios) = outcome {
                for sc in scenarios {
                    let reparsed = scn::compile_one(&sc.canonical())
                        .expect("canonical form of a valid mutant recompiles");
                    assert_eq!(sc, reparsed, "mutant canonical round-trip");
                    assert_eq!(sc.digest(), reparsed.digest());
                }
            }
        }
    }
}

/// Truncation at every character boundary of a valid scenario: incomplete
/// input is the classic recursive-descent panic trap.
#[test]
fn every_prefix_of_a_valid_scenario_never_panics() {
    let dir = scn::find_scenarios_dir().expect("scenarios/ directory exists");
    let src = std::fs::read_to_string(dir.join("policy_sweep.scn")).expect("committed scenario");
    let chars: Vec<char> = src.chars().collect();
    for end in 0..chars.len() {
        let prefix: String = chars[..end].iter().collect();
        must_not_panic(&prefix);
    }
}
