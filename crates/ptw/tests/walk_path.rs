//! Integration tests of the full walk path: queue -> walker -> PW-cache ->
//! page table, as the GMMU drives it.

use ptw::{Location, PageTable, Pte, PwCache, PwQueue, Stc, Utc, WalkerPool};

/// Drives a batch of translation requests through the PW machinery the way
/// the simulator does, returning total serialized memory accesses.
fn drive(pwc: &mut dyn PwCache, pt: &PageTable, vpns: &[u64]) -> u64 {
    let mut queue: PwQueue<u64> = PwQueue::new(64);
    let mut pool = WalkerPool::new(8);
    let mut total = 0u64;
    for (t, &vpn) in vpns.iter().enumerate() {
        queue.push(vpn, t as u64).unwrap();
    }
    let mut now = 0;
    while let Some((vpn, _)) = queue.pop(now) {
        assert!(pool.try_acquire());
        let resume = pwc.lookup(vpn);
        let walk = pt.walk(vpn, resume);
        total += u64::from(walk.accesses);
        let start = resume.map_or(pt.levels(), |k| k - 1);
        for k in walk.reached_level.max(2)..=start {
            pwc.insert(vpn, k);
        }
        pool.release();
        now += 100;
    }
    total
}

#[test]
fn utc_cuts_accesses_on_locality() {
    let mut pt = PageTable::new(5);
    for vpn in 0..64 {
        pt.insert(vpn, Pte::new(vpn, Location::Gpu(0)));
    }
    let mut pwc = Utc::new(128, 5);
    // Sequential pages share every upper level: after the first full walk,
    // each subsequent walk resumes at level 2 (1 access).
    let vpns: Vec<u64> = (0..64).collect();
    let total = drive(&mut pwc, &pt, &vpns);
    assert_eq!(total, 5 + 63, "first walk 5 accesses, then 1 each");
    assert!(pwc.stats().hit_rate() > 0.9);
}

#[test]
fn stc_behaves_like_utc_on_small_working_sets(){
    let mut pt = PageTable::new(5);
    for vpn in 0..64 {
        pt.insert(vpn, Pte::new(vpn, Location::Gpu(0)));
    }
    let vpns: Vec<u64> = (0..64).collect();
    let mut utc = Utc::new(128, 5);
    let mut stc = Stc::paper_default(5);
    assert_eq!(
        drive(&mut utc, &pt, &vpns),
        drive(&mut stc, &pt, &vpns),
        "both organisations serve a covered working set identically"
    );
}

#[test]
fn failed_walks_still_prime_the_cache() {
    let mut pt = PageTable::new(5);
    pt.insert(0, Pte::new(0, Location::Gpu(0)));
    let mut pwc = Utc::new(128, 5);
    // Walk an unmapped neighbour: upper levels exist (thanks to vpn 0), the
    // leaf does not; the walk fails but caches what it read.
    let probe = 1; // same leaf table as vpn 0
    let w1 = pt.walk(probe, pwc.lookup(probe));
    assert!(w1.pte.is_none());
    assert_eq!(w1.accesses, 5, "cold failed walk reads down to the leaf");
    let start = 5;
    for k in w1.reached_level.max(2)..=start {
        pwc.insert(probe, k);
    }
    // The page gets mapped (migration); the next walk resumes low.
    pt.insert(probe, Pte::new(probe, Location::Gpu(0)));
    let resume = pwc.lookup(probe);
    let w2 = pt.walk(probe, resume);
    assert_eq!(w2.accesses, 1, "resume from the cached L2 entry");
    assert!(w2.pte.is_some());
}

#[test]
fn queue_pressure_is_visible_in_wait_stats() {
    let mut queue: PwQueue<u64> = PwQueue::new(64);
    let mut pool = WalkerPool::new(2);
    // 10 requests arrive at t=0; 2 walkers drain them 500 cycles apart.
    for i in 0..10u64 {
        queue.push(i, 0).unwrap();
    }
    let mut now = 0;
    while !queue.is_empty() {
        while pool.has_free() && !queue.is_empty() {
            queue.pop(now);
            assert!(pool.try_acquire());
        }
        now += 500;
        pool.release();
        pool.release();
    }
    // Later requests waited multiple walk rounds.
    assert!(queue.waiting().max() >= 1500, "max wait {}", queue.waiting().max());
    assert!(queue.waiting().mean() > 500.0);
}

#[test]
fn unmap_invalidation_prevents_stale_resumes() {
    let mut pt = PageTable::new(5);
    let mut pwc = Utc::new(128, 5);
    pt.insert(7, Pte::new(7, Location::Gpu(0)));
    let w = pt.walk(7, None);
    for k in w.reached_level.max(2)..=5 {
        pwc.insert(7, k);
    }
    // Unmap: the leaf table dies; its L2-level entry must be invalidated.
    let (_, emptied) = pt.remove(7).unwrap();
    for k in emptied {
        if k <= 5 {
            pwc.invalidate(7, k);
        }
    }
    // A fresh walk must not resume below the surviving levels.
    let resume = pwc.lookup(7);
    let w = pt.walk(7, resume);
    assert!(w.pte.is_none());
}
