//! Page-walk queues and the multi-threaded walker pool.

use std::collections::VecDeque;

use sim_core::stats::LatencyAccumulator;
use sim_core::Cycle;

/// The PW-queue of Fig. 1: translation requests wait here for a free
/// page-table-walk thread. The queue records per-request waiting time, the
/// first latency component the paper identifies (§III-B: 25% of L2 TLB miss
/// latency on average).
///
/// # Examples
///
/// ```
/// use ptw::PwQueue;
///
/// let mut q: PwQueue<u32> = PwQueue::new(64);
/// q.push(17, 100).unwrap();
/// let (req, waited) = q.pop(250).unwrap();
/// assert_eq!(req, 17);
/// assert_eq!(waited, 150);
/// ```
#[derive(Debug, Clone)]
pub struct PwQueue<R> {
    queue: VecDeque<(R, Cycle)>,
    capacity: usize,
    waiting: LatencyAccumulator,
    rejects: u64,
    peak: usize,
}

impl<R> PwQueue<R> {
    /// Creates a queue with room for `capacity` requests (Table II: 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            queue: VecDeque::new(),
            capacity,
            waiting: LatencyAccumulator::new(),
            rejects: 0,
            peak: 0,
        }
    }

    /// Enqueues a request at time `now`.
    ///
    /// # Errors
    ///
    /// Returns the request back when the queue is full (the upstream MSHR
    /// must stall it).
    pub fn push(&mut self, request: R, now: Cycle) -> Result<(), R> {
        if self.queue.len() >= self.capacity {
            self.rejects += 1;
            return Err(request);
        }
        self.queue.push_back((request, now));
        self.peak = self.peak.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest request at time `now`, recording its wait.
    pub fn pop(&mut self, now: Cycle) -> Option<(R, Cycle)> {
        let (request, enqueued) = self.queue.pop_front()?;
        let waited = now.saturating_sub(enqueued);
        self.waiting.record(waited);
        Some((request, waited))
    }

    /// Removes the first request matching `pred` without accounting a wait
    /// (used by Trans-FW to cancel a host walk satisfied remotely, §IV-C).
    pub fn remove_where<F: FnMut(&R) -> bool>(&mut self, mut pred: F) -> Option<R> {
        let pos = self.queue.iter().position(|(r, _)| pred(r))?;
        self.queue.remove(pos).map(|(r, _)| r)
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no requests wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining before pushes start failing — the occupancy
    /// headroom admission control watches.
    pub fn headroom(&self) -> usize {
        self.capacity.saturating_sub(self.queue.len())
    }

    /// Largest occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Accumulated waiting-time statistics.
    pub fn waiting(&self) -> &LatencyAccumulator {
        &self.waiting
    }

    /// Requests rejected because the queue was full.
    pub fn reject_count(&self) -> u64 {
        self.rejects
    }
}

/// The pool of hardware page-table-walk threads (8 in the GMMU, 16 in the
/// host MMU per Table II). Purely an occupancy tracker; the simulator
/// schedules completion events.
///
/// # Examples
///
/// ```
/// use ptw::WalkerPool;
///
/// let mut pool = WalkerPool::new(2);
/// assert!(pool.try_acquire());
/// assert!(pool.try_acquire());
/// assert!(!pool.try_acquire()); // all busy
/// pool.release();
/// assert!(pool.try_acquire());
/// ```
#[derive(Debug, Clone)]
pub struct WalkerPool {
    threads: usize,
    busy: usize,
    walks: u64,
    infinite: bool,
}

impl WalkerPool {
    /// Creates a pool with `threads` walkers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        Self {
            threads,
            busy: 0,
            walks: 0,
            infinite: false,
        }
    }

    /// A pool that never runs out of walkers, for the Fig. 4 ideal study.
    pub fn infinite() -> Self {
        Self {
            threads: usize::MAX,
            busy: 0,
            walks: 0,
            infinite: true,
        }
    }

    /// Acquires a walker if one is free.
    pub fn try_acquire(&mut self) -> bool {
        if self.infinite || self.busy < self.threads {
            self.busy += 1;
            self.walks += 1;
            true
        } else {
            false
        }
    }

    /// Releases a previously acquired walker.
    ///
    /// # Panics
    ///
    /// Panics if no walker is busy.
    pub fn release(&mut self) {
        assert!(self.busy > 0, "release without acquire");
        self.busy -= 1;
    }

    /// Walkers currently busy.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Whether at least one walker is free.
    pub fn has_free(&self) -> bool {
        self.infinite || self.busy < self.threads
    }

    /// Configured thread count (`usize::MAX` for the infinite pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total walks started.
    pub fn walk_count(&self) -> u64 {
        self.walks
    }

    /// Force-releases every busy walker, returning how many were aborted.
    /// Used when the component owning the pool goes offline: the in-flight
    /// walks it was serving are discarded or re-issued by the caller, and
    /// the pool must come back up idle.
    pub fn force_reset(&mut self) -> usize {
        std::mem::take(&mut self.busy)
    }
}

/// Latency of a walk performing `accesses` serialized memory accesses.
///
/// ```
/// assert_eq!(ptw::queue::walk_latency(5, 100), 500);
/// ```
pub fn walk_latency(accesses: u32, per_level: Cycle) -> Cycle {
    Cycle::from(accesses) * per_level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_fifo_and_wait_accounting() {
        let mut q: PwQueue<u32> = PwQueue::new(4);
        q.push(1, 10).unwrap();
        q.push(2, 20).unwrap();
        let (r, w) = q.pop(50).unwrap();
        assert_eq!((r, w), (1, 40));
        let (r, w) = q.pop(50).unwrap();
        assert_eq!((r, w), (2, 30));
        assert_eq!(q.waiting().count(), 2);
        assert_eq!(q.waiting().total(), 70);
    }

    #[test]
    fn queue_rejects_when_full() {
        let mut q: PwQueue<u32> = PwQueue::new(2);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        assert_eq!(q.push(3, 0), Err(3));
        assert_eq!(q.reject_count(), 1);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn queue_headroom_shrinks_with_occupancy() {
        let mut q: PwQueue<u32> = PwQueue::new(3);
        assert_eq!(q.headroom(), 3);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        assert_eq!(q.headroom(), 1);
        q.push(3, 0).unwrap();
        assert_eq!(q.headroom(), 0);
        let _ = q.pop(1);
        assert_eq!(q.headroom(), 1);
    }

    #[test]
    fn queue_remove_where() {
        let mut q: PwQueue<u32> = PwQueue::new(8);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        q.push(3, 0).unwrap();
        assert_eq!(q.remove_where(|&r| r == 2), Some(2));
        assert_eq!(q.remove_where(|&r| r == 2), None);
        assert_eq!(q.len(), 2);
        // FIFO order of remaining preserved.
        assert_eq!(q.pop(0).unwrap().0, 1);
        assert_eq!(q.pop(0).unwrap().0, 3);
    }

    #[test]
    fn pool_limits_concurrency() {
        let mut p = WalkerPool::new(3);
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert!(!p.try_acquire());
        assert!(!p.has_free());
        p.release();
        assert!(p.has_free());
        assert_eq!(p.walk_count(), 3);
    }

    #[test]
    fn infinite_pool_never_blocks() {
        let mut p = WalkerPool::infinite();
        for _ in 0..10_000 {
            assert!(p.try_acquire());
        }
        assert!(p.has_free());
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_without_acquire_panics() {
        WalkerPool::new(1).release();
    }

    #[test]
    fn walk_latency_scales() {
        assert_eq!(walk_latency(0, 100), 0);
        assert_eq!(walk_latency(3, 100), 300);
    }

    #[test]
    fn force_reset_aborts_busy_walkers() {
        let mut p = WalkerPool::new(2);
        assert!(p.try_acquire());
        assert!(p.try_acquire());
        assert_eq!(p.force_reset(), 2);
        assert_eq!(p.busy(), 0);
        assert!(p.has_free());
        assert_eq!(p.walk_count(), 2, "walk counter survives the reset");
        assert_eq!(p.force_reset(), 0);
    }
}
