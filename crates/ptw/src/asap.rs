//! The ASAP address-translation prefetcher (Margaritov et al., MICRO'19),
//! the comparator of §V-H.
//!
//! ASAP observes that once the upper page-table levels are stable, the
//! physical addresses of lower-level entries can be *precomputed* and fetched
//! in parallel with (instead of after) the upper-level reads. A successful
//! prediction collapses a multi-access walk into a single serialized access;
//! a misprediction falls back to the full sequential walk (plus the wasted
//! parallel fetches, which we account as extra memory traffic).

use sim_core::{SimRng, StateDigest};

/// ASAP prefetcher model.
///
/// # Examples
///
/// ```
/// use ptw::Asap;
///
/// let mut asap = Asap::new(1.0); // always predicts correctly
/// // A 4-access walk collapses to 1 serialized access.
/// assert_eq!(asap.effective_accesses(4), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Asap {
    accuracy: f64,
    rng: SimRng,
    predictions: u64,
    correct: u64,
    extra_accesses: u64,
}

impl Asap {
    /// Default prediction accuracy used in the §V-H comparison.
    pub const DEFAULT_ACCURACY: f64 = 0.85;

    /// Creates a prefetcher with the given prediction accuracy in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    pub fn new(accuracy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be in [0,1], got {accuracy}"
        );
        Self {
            accuracy,
            rng: SimRng::new(0xA5A9_0001),
            predictions: 0,
            correct: 0,
            extra_accesses: 0,
        }
    }

    /// Given a walk needing `serialized` sequential accesses, returns how
    /// many *serialized* accesses remain with ASAP prefetching.
    ///
    /// Walks that already need ≤ 1 access gain nothing. Mispredicted walks
    /// pay the full cost and the speculative fetches count as extra traffic.
    pub fn effective_accesses(&mut self, serialized: u32) -> u32 {
        if serialized <= 1 {
            return serialized;
        }
        self.predictions += 1;
        if self.rng.chance(self.accuracy) {
            self.correct += 1;
            // The lower-level reads overlap with the first access.
            self.extra_accesses += u64::from(serialized - 1);
            1
        } else {
            self.extra_accesses += u64::from(serialized - 1);
            serialized
        }
    }

    /// Prediction accuracy parameter.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Walks on which ASAP attempted a prediction.
    pub fn prediction_count(&self) -> u64 {
        self.predictions
    }

    /// Observed fraction of correct predictions.
    pub fn observed_accuracy(&self) -> f64 {
        sim_core::stats::ratio(self.correct, self.predictions)
    }

    /// Speculative memory accesses issued (traffic overhead).
    pub fn extra_access_count(&self) -> u64 {
        self.extra_accesses
    }

    /// A 64-bit digest of the prefetcher's full state — the configured
    /// accuracy, the coin-flip RNG position and the outcome counters — for
    /// epoch checkpoints.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.accuracy.to_bits())
            .mix(self.rng.state_digest())
            .mix(self.predictions)
            .mix(self.correct)
            .mix(self.extra_accesses);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_accuracy_collapses_walks() {
        let mut a = Asap::new(1.0);
        assert_eq!(a.effective_accesses(5), 1);
        assert_eq!(a.effective_accesses(2), 1);
        assert_eq!(a.observed_accuracy(), 1.0);
    }

    #[test]
    fn zero_accuracy_never_helps() {
        let mut a = Asap::new(0.0);
        assert_eq!(a.effective_accesses(5), 5);
        assert_eq!(a.observed_accuracy(), 0.0);
    }

    #[test]
    fn single_access_walks_untouched() {
        let mut a = Asap::new(1.0);
        assert_eq!(a.effective_accesses(1), 1);
        assert_eq!(a.effective_accesses(0), 0);
        assert_eq!(a.prediction_count(), 0);
    }

    #[test]
    fn observed_accuracy_tracks_parameter() {
        let mut a = Asap::new(0.7);
        for _ in 0..20_000 {
            a.effective_accesses(4);
        }
        let obs = a.observed_accuracy();
        assert!((obs - 0.7).abs() < 0.02, "observed {obs}");
    }

    #[test]
    fn extra_traffic_accounted() {
        let mut a = Asap::new(1.0);
        a.effective_accesses(5);
        assert_eq!(a.extra_access_count(), 4);
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn invalid_accuracy_panics() {
        let _ = Asap::new(1.5);
    }
}
