//! Page-table walking machinery for the GMMU and host MMU.
//!
//! This crate provides everything inside the "GMMU" and "host MMU" boxes of
//! Fig. 1 except the TLBs:
//!
//! * [`PageTable`] — a 4- or 5-level radix page table with per-level node
//!   tracking, so a walk knows exactly how many memory accesses it performs
//!   (100 cycles each in the paper's configuration) and where a failed walk
//!   for a non-resident page stops.
//! * [`PwCache`] implementations — the **Unified Translation Cache**
//!   ([`Utc`], the paper's default: one cache mixing entries of all levels,
//!   longest-prefix match) and the **Split Translation Cache** ([`Stc`],
//!   §V-C: separate per-level caches).
//! * [`PwQueue`] / [`WalkerPool`] — the page-walk queue and the multi-
//!   threaded walker model (8 GMMU / 16 host MMU threads in Table II).
//! * [`Asap`] — the ASAP address-translation prefetcher used as a
//!   comparator in §V-H.
//!
//! # Examples
//!
//! ```
//! use ptw::{PageTable, Location, Pte};
//!
//! let mut pt = PageTable::new(5);
//! pt.insert(0x1234, Pte::new(0xabcd, Location::Gpu(0)));
//! let walk = pt.walk(0x1234, None);
//! assert_eq!(walk.accesses, 5); // cold walk touches all 5 levels
//! assert!(walk.pte.is_some());
//! ```

pub mod asap;
pub mod pwc;
pub mod queue;
pub mod table;

pub use asap::Asap;
pub use pwc::{InfinitePwc, PwCache, PwCacheStats, Stc, Utc};
pub use queue::{PwQueue, WalkerPool};
pub use table::{GpuId, Location, PageTable, Pte, WalkResult};

/// Bits of virtual page number consumed per radix level.
///
/// Real 5-level x86 paging uses 9 bits (512-entry tables); this model uses
/// 6 so that the ratio of PW-cache *reach* to application footprint at
/// simulation scale matches the paper's regime (their workloads exceed the
/// 128-entry cache's multi-GB reach; scaled footprints would otherwise be
/// fully covered and every walk would take a single access). Documented in
/// DESIGN.md as a substitution.
pub const BITS_PER_LEVEL: u32 = 6;
