//! Radix page tables with walk-cost accounting.

use sim_core::det::DetMap;
use sim_core::StateDigest;

use crate::BITS_PER_LEVEL;

/// Identifier of a GPU in the system (0-based).
pub type GpuId = u16;

/// Where a physical page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// Host (CPU) memory.
    Cpu,
    /// Device memory of the given GPU.
    Gpu(GpuId),
}

impl Location {
    /// Returns the GPU id if this location is a GPU.
    pub fn gpu(self) -> Option<GpuId> {
        match self {
            Location::Gpu(g) => Some(g),
            Location::Cpu => None,
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Cpu => write!(f, "CPU"),
            Location::Gpu(g) => write!(f, "GPU{g}"),
        }
    }
}

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical page number.
    pub ppn: u64,
    /// Memory the page resides in. For a GPU-local page table this is
    /// normally the local GPU; under *remote mapping* (§V-E) it may point at
    /// a peer GPU's memory.
    pub loc: Location,
}

impl Pte {
    /// Creates a PTE mapping to `ppn` in `loc`.
    pub fn new(ppn: u64, loc: Location) -> Self {
        Self { ppn, loc }
    }
}

/// Result of walking the table for one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// Serialized memory accesses the walk performed (each costs the
    /// per-level latency, 100 cycles in Table II).
    pub accesses: u32,
    /// The translation, or `None` when the page is not mapped here (a *far
    /// fault* when this is a GPU-local table).
    pub pte: Option<Pte>,
    /// Deepest level whose entry was successfully read, for PW-cache refill
    /// (`level_count + 1` encodes "nothing read"; 1 means the leaf PTE).
    pub reached_level: u32,
}

/// A radix page table of 4 or 5 levels.
///
/// Level numbering follows the paper: level `L` (4 or 5) is the root, level
/// 1 is the leaf table holding PTEs. An entry *at level k* points to the
/// level `k-1` table; the PW-cache stores entries for levels `2..=L`.
///
/// # Examples
///
/// ```
/// use ptw::{PageTable, Pte, Location};
///
/// let mut pt = PageTable::new(5);
/// pt.insert(7, Pte::new(70, Location::Cpu));
/// // Second walk of a neighbouring page reuses upper levels only if the
/// // walker resumes from a PW-cache hit; a raw walk always starts at root.
/// assert_eq!(pt.walk(7, None).accesses, 5);
/// // Resuming from a level-2 PW-cache hit costs a single access.
/// assert_eq!(pt.walk(7, Some(2)).accesses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    levels: u32,
    leaves: DetMap<u64, Pte>,
    /// `nodes[l-1]` (for table level `l` in `1..=levels-1`) maps a table's
    /// identifying prefix (`vpn >> (9*l)`) to the number of leaves beneath
    /// it, so node removal is exact.
    nodes: Vec<DetMap<u64, u32>>,
}

impl PageTable {
    /// Creates an empty table with `levels` levels (the paper evaluates 5,
    /// the default, and 4 in Fig. 19).
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is between 2 and 6.
    pub fn new(levels: u32) -> Self {
        assert!((2..=6).contains(&levels), "levels must be in 2..=6");
        Self {
            levels,
            leaves: DetMap::new(),
            nodes: (0..levels - 1).map(|_| DetMap::new()).collect(),
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.leaves.len()
    }

    #[inline]
    fn prefix(vpn: u64, table_level: u32) -> u64 {
        vpn >> (BITS_PER_LEVEL * table_level)
    }

    /// Maps `vpn`, creating intermediate tables as needed. Returns the
    /// previous PTE if the page was already mapped.
    pub fn insert(&mut self, vpn: u64, pte: Pte) -> Option<Pte> {
        let old = self.leaves.insert(vpn, pte);
        if old.is_none() {
            for l in 1..self.levels {
                *self.nodes[(l - 1) as usize]
                    .entry(Self::prefix(vpn, l))
                    .or_insert(0) += 1;
            }
        }
        old
    }

    /// Unmaps `vpn`. Returns the removed PTE and the table levels whose
    /// nodes disappeared (their cached PW-cache entries become stale).
    pub fn remove(&mut self, vpn: u64) -> Option<(Pte, Vec<u32>)> {
        let pte = self.leaves.remove(&vpn)?;
        let mut emptied = Vec::new();
        for l in 1..self.levels {
            let map = &mut self.nodes[(l - 1) as usize];
            let prefix = Self::prefix(vpn, l);
            let Some(count) = map.get_mut(&prefix) else {
                continue; // node already gone: nothing to decrement
            };
            *count -= 1;
            if *count == 0 {
                map.remove(&prefix);
                // The entry *pointing at* this table lives at level l+1.
                emptied.push(l + 1);
            }
        }
        Some((pte, emptied))
    }

    /// Direct translation without cost modelling (driver-style access).
    pub fn translate(&self, vpn: u64) -> Option<&Pte> {
        self.leaves.get(&vpn)
    }

    /// Mutable access to a mapped PTE.
    pub fn translate_mut(&mut self, vpn: u64) -> Option<&mut Pte> {
        self.leaves.get_mut(&vpn)
    }

    fn table_exists(&self, table_level: u32, vpn: u64) -> bool {
        if table_level == self.levels {
            return true; // root always exists
        }
        self.nodes[(table_level - 1) as usize].contains_key(&Self::prefix(vpn, table_level))
    }

    /// Walks the table for `vpn`, optionally resuming below a PW-cache hit.
    ///
    /// `resume_at` is the PW-cache hit level `k` (an entry at level `k`
    /// points into the level `k-1` table), so the walk reads levels
    /// `k-1, k-2, …, 1`; `None` starts from the root (level `levels`).
    ///
    /// # Panics
    ///
    /// Panics if `resume_at` is outside `2..=levels`.
    pub fn walk(&self, vpn: u64, resume_at: Option<u32>) -> WalkResult {
        let start = match resume_at {
            Some(k) => {
                assert!(
                    (2..=self.levels).contains(&k),
                    "resume level {k} out of range"
                );
                k - 1
            }
            None => self.levels,
        };
        let mut accesses = 0;
        let mut reached = self.levels + 1;
        for l in (1..=start).rev() {
            // Reading the entry at level l is one memory access; the entry is
            // present iff the thing it points to exists.
            accesses += 1;
            let present = if l == 1 {
                self.leaves.contains_key(&vpn)
            } else {
                self.table_exists(l - 1, vpn)
            };
            if !present {
                return WalkResult {
                    accesses,
                    pte: None,
                    reached_level: reached,
                };
            }
            reached = l;
        }
        WalkResult {
            accesses,
            pte: self.leaves.get(&vpn).copied(),
            reached_level: reached,
        }
    }

    /// A 64-bit digest of the table's full state — geometry, every leaf
    /// mapping (vpn, ppn, location) and the interior-node refcounts — for
    /// epoch checkpoints. Iteration is key-ordered (`DetMap`), so the
    /// digest is stable across runs and shard layouts.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(u64::from(self.levels));
        d.mix(self.leaves.len() as u64);
        for (&vpn, pte) in self.leaves.iter() {
            let loc = pte.loc.gpu().map_or(0, |g| u64::from(g) + 1);
            d.mix(vpn).mix(pte.ppn ^ (loc << 48));
        }
        for level in &self.nodes {
            d.mix(level.len() as u64);
            for (&prefix, &leaves_below) in level.iter() {
                d.mix(prefix ^ (u64::from(leaves_below) << 40));
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(ppn: u64) -> Pte {
        Pte::new(ppn, Location::Gpu(0))
    }

    #[test]
    fn cold_walk_touches_every_level() {
        let mut pt = PageTable::new(5);
        pt.insert(100, pte(1));
        let w = pt.walk(100, None);
        assert_eq!(w.accesses, 5);
        assert_eq!(w.pte, Some(pte(1)));
        assert_eq!(w.reached_level, 1);
    }

    #[test]
    fn four_level_walk() {
        let mut pt = PageTable::new(4);
        pt.insert(100, pte(1));
        assert_eq!(pt.walk(100, None).accesses, 4);
    }

    #[test]
    fn resume_levels_cut_accesses() {
        let mut pt = PageTable::new(5);
        pt.insert(100, pte(1));
        for k in 2..=5u32 {
            let w = pt.walk(100, Some(k));
            assert_eq!(w.accesses, k - 1, "resume at L{k}");
            assert!(w.pte.is_some());
        }
    }

    #[test]
    fn unmapped_walk_stops_at_first_absent_node() {
        let mut pt = PageTable::new(5);
        // Map a page sharing the top 2 levels with the probe address.
        let base = 0b1_0000_0000_0000_0000_0000_0000_0000u64; // differs below L4
        pt.insert(base, pte(1));
        // Probe with same L5/L4 prefix but different L3 index.
        let probe = base ^ (1 << (2 * BITS_PER_LEVEL));
        let w = pt.walk(probe, None);
        assert!(w.pte.is_none());
        // Reads L5 (root entry present), L4 (present), L3 (absent) = 3.
        assert_eq!(w.accesses, 3);
    }

    #[test]
    fn fully_unrelated_unmapped_walk_is_one_access() {
        let mut pt = PageTable::new(5);
        pt.insert(0, pte(1));
        // A vpn differing in the top-level index: root entry absent.
        let probe = 1u64 << (4 * BITS_PER_LEVEL);
        let w = pt.walk(probe, None);
        assert_eq!(w.accesses, 1);
        assert!(w.pte.is_none());
    }

    #[test]
    fn empty_table_walk_fails_fast() {
        let pt = PageTable::new(5);
        let w = pt.walk(42, None);
        assert_eq!(w.accesses, 1);
        assert!(w.pte.is_none());
    }

    #[test]
    fn remove_reports_emptied_levels() {
        let mut pt = PageTable::new(5);
        pt.insert(0, pte(1));
        pt.insert(1, pte(2)); // shares every table with vpn 0
        let (_, emptied) = pt.remove(0).unwrap();
        assert!(emptied.is_empty(), "tables still backed by vpn 1");
        let (_, emptied) = pt.remove(1).unwrap();
        assert_eq!(emptied, vec![2, 3, 4, 5]);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut pt = PageTable::new(5);
        assert!(pt.remove(9).is_none());
    }

    #[test]
    fn reinsert_overwrites() {
        let mut pt = PageTable::new(5);
        assert_eq!(pt.insert(3, pte(1)), None);
        assert_eq!(pt.insert(3, pte(2)), Some(pte(1)));
        assert_eq!(pt.translate(3), Some(&pte(2)));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn translate_mut_allows_update() {
        let mut pt = PageTable::new(5);
        pt.insert(3, pte(1));
        pt.translate_mut(3).unwrap().loc = Location::Cpu;
        assert_eq!(pt.translate(3).unwrap().loc, Location::Cpu);
    }

    #[test]
    #[should_panic(expected = "resume level")]
    fn resume_out_of_range_panics() {
        let pt = PageTable::new(4);
        pt.walk(0, Some(5));
    }

    #[test]
    fn walk_after_remove_fails() {
        let mut pt = PageTable::new(5);
        pt.insert(77, pte(1));
        pt.remove(77);
        assert!(pt.walk(77, None).pte.is_none());
    }
}
