//! Page-walk caches: the Unified Translation Cache (UTC) and the Split
//! Translation Cache (STC).
//!
//! Both cache *upper-level* page-table entries so a walk can skip levels.
//! An entry at level `k` (for `k` in `2..=L`) is tagged by the virtual-page
//! prefix `vpn >> (9*(k-1))` and lets the walker resume at level `k-1`,
//! costing `k-1` memory accesses instead of `L`.

use sim_core::det::{DetMap, DetSet};

use crate::BITS_PER_LEVEL;

/// Hit/miss statistics broken down by level, for Figs. 5, 6 and 13.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PwCacheStats {
    /// `hits_at[k]` counts lookups whose longest match was a level-`k`
    /// entry (indices `0` and `1` stay unused; leaf hits belong to the TLB).
    pub hits_at: Vec<u64>,
    /// Lookups with no matching entry at any level.
    pub misses: u64,
    /// Total lookups.
    pub lookups: u64,
}

impl PwCacheStats {
    fn new(levels: u32) -> Self {
        Self {
            hits_at: vec![0; levels as usize + 1],
            misses: 0,
            lookups: 0,
        }
    }

    /// Fraction of lookups whose longest match was at level `k`.
    pub fn hit_rate_at(&self, k: u32) -> f64 {
        sim_core::stats::ratio(self.hits_at[k as usize], self.lookups)
    }

    /// Fraction of lookups that matched at *any* level.
    pub fn hit_rate(&self) -> f64 {
        sim_core::stats::ratio(self.lookups - self.misses, self.lookups)
    }

    /// Fraction of lookups that hit at level `max_k` or below (lower levels
    /// mean fewer remaining accesses; the paper calls L2/L3 "lower levels").
    pub fn hit_rate_at_or_below(&self, max_k: u32) -> f64 {
        let hits: u64 = self.hits_at[..=(max_k as usize)].iter().sum();
        sim_core::stats::ratio(hits, self.lookups)
    }

    /// Folds another cache's statistics into this one (used to aggregate the
    /// per-GPU GMMU PW-caches into a system-wide view).
    pub fn merge(&mut self, other: &PwCacheStats) {
        if self.hits_at.len() < other.hits_at.len() {
            self.hits_at.resize(other.hits_at.len(), 0);
        }
        for (k, &h) in other.hits_at.iter().enumerate() {
            self.hits_at[k] += h;
        }
        self.misses = self.misses.saturating_add(other.misses);
        self.lookups = self.lookups.saturating_add(other.lookups);
    }
}

/// A page-walk cache: maps virtual-page prefixes to page-table levels.
///
/// This trait is sealed in spirit — the simulator works with any
/// implementation, and the two the paper evaluates are [`Utc`] and [`Stc`].
pub trait PwCache: std::fmt::Debug + Send {
    /// Returns the level `k` of the longest-prefix matching entry
    /// (`2..=levels`), or `None` on a complete miss. Updates statistics.
    fn lookup(&mut self, vpn: u64) -> Option<u32>;

    /// Like [`lookup`](Self::lookup) but without touching LRU state or
    /// statistics — used to *probe* remote GPUs' PW-caches for the paper's
    /// Fig. 8 study.
    fn probe(&self, vpn: u64) -> Option<u32>;

    /// Inserts an entry at level `k` for `vpn`'s prefix.
    fn insert(&mut self, vpn: u64, k: u32);

    /// Invalidates the level-`k` entry covering `vpn`, if present (used when
    /// a page-table node is torn down on unmap).
    fn invalidate(&mut self, vpn: u64, k: u32);

    /// Drops every cached entry while preserving accumulated statistics —
    /// used when a GPU is taken offline and its page-table state is torn
    /// down wholesale rather than entry by entry.
    fn flush(&mut self);

    /// Statistics gathered so far.
    fn stats(&self) -> &PwCacheStats;

    /// Number of page-table levels this cache serves.
    fn levels(&self) -> u32;
}

#[inline]
fn tag(vpn: u64, k: u32) -> u64 {
    vpn >> (BITS_PER_LEVEL * (k - 1))
}

#[derive(Debug, Clone)]
struct LruArray {
    /// (level, prefix) -> last-use tick.
    entries: DetMap<(u32, u64), u64>,
    capacity: usize,
    tick: u64,
}

impl LruArray {
    fn new(capacity: usize) -> Self {
        Self {
            entries: DetMap::with_capacity(capacity + 1),
            capacity,
            tick: 0,
        }
    }

    fn touch(&mut self, key: (u32, u64)) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(t) = self.entries.get_mut(&key) {
            *t = tick;
            true
        } else {
            false
        }
    }

    fn contains(&self, key: (u32, u64)) -> bool {
        self.entries.contains_key(&key)
    }

    fn insert(&mut self, key: (u32, u64)) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(t) = self.entries.get_mut(&key) {
            *t = tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Victim = oldest tick; ties (impossible today — every touch
            // mints a fresh tick, but total order costs nothing) break to
            // the smallest (level, prefix) key, never to iteration chance.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|&(&key, &t)| (t, key)) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, tick);
    }

    fn remove(&mut self, key: (u32, u64)) -> bool {
        self.entries.remove(&key).is_some()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The Unified Translation Cache: entries from every level share one
/// fully-associative LRU array; a single lookup returns the longest matching
/// prefix (§II-B "Page walk cache").
///
/// # Examples
///
/// ```
/// use ptw::pwc::{PwCache, Utc};
///
/// let mut utc = Utc::new(128, 5);
/// utc.insert(0x1234, 5);
/// utc.insert(0x1234, 3);
/// // Longest prefix (lowest level) wins.
/// assert_eq!(utc.lookup(0x1234), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Utc {
    array: LruArray,
    levels: u32,
    stats: PwCacheStats,
}

impl Utc {
    /// Creates a UTC with `capacity` total entries serving a `levels`-level
    /// page table (the paper: 128 entries, 5 levels).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `levels < 2`.
    pub fn new(capacity: usize, levels: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(levels >= 2, "page table needs at least 2 levels");
        Self {
            array: LruArray::new(capacity),
            levels,
            stats: PwCacheStats::new(levels),
        }
    }

    /// Current number of cached entries.
    pub fn occupancy(&self) -> usize {
        self.array.len()
    }
}

impl PwCache for Utc {
    fn lookup(&mut self, vpn: u64) -> Option<u32> {
        self.stats.lookups = self.stats.lookups.saturating_add(1);
        for k in 2..=self.levels {
            if self.array.contains((k, tag(vpn, k))) {
                self.array.touch((k, tag(vpn, k)));
                self.stats.hits_at[k as usize] += 1;
                return Some(k);
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        None
    }

    fn probe(&self, vpn: u64) -> Option<u32> {
        (2..=self.levels).find(|&k| self.array.contains((k, tag(vpn, k))))
    }

    fn insert(&mut self, vpn: u64, k: u32) {
        debug_assert!((2..=self.levels).contains(&k));
        self.array.insert((k, tag(vpn, k)));
    }

    fn invalidate(&mut self, vpn: u64, k: u32) {
        self.array.remove((k, tag(vpn, k)));
    }

    fn flush(&mut self) {
        self.array.clear();
    }

    fn stats(&self) -> &PwCacheStats {
        &self.stats
    }

    fn levels(&self) -> u32 {
        self.levels
    }
}

/// The Split Translation Cache: one array per level (§V-C; 16/16/32/64
/// entries for L5/L4/L3/L2 in the paper's configuration).
///
/// # Examples
///
/// ```
/// use ptw::pwc::{PwCache, Stc};
///
/// let mut stc = Stc::paper_default(5);
/// stc.insert(0x1234, 2);
/// assert_eq!(stc.lookup(0x1234), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Stc {
    /// `arrays[k-2]` serves level `k`.
    arrays: Vec<LruArray>,
    levels: u32,
    stats: PwCacheStats,
}

impl Stc {
    /// Creates an STC where `capacities[k-2]` is the size of the level-`k`
    /// array (ordered from L2 upward).
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != levels - 1` or any capacity is zero.
    pub fn new(capacities: &[usize], levels: u32) -> Self {
        assert_eq!(
            capacities.len(),
            (levels - 1) as usize,
            "need one capacity per cached level"
        );
        assert!(capacities.iter().all(|&c| c > 0), "capacities must be positive");
        Self {
            arrays: capacities.iter().map(|&c| LruArray::new(c)).collect(),
            levels,
            stats: PwCacheStats::new(levels),
        }
    }

    /// The paper's configuration: 64 entries for L2, 32 for L3, 16 for L4,
    /// 16 for L5 (and for a 4-level table: 64/32/16).
    pub fn paper_default(levels: u32) -> Self {
        let caps: Vec<usize> = (2..=levels)
            .map(|k| match k {
                2 => 64,
                3 => 32,
                _ => 16,
            })
            .collect();
        Self::new(&caps, levels)
    }

    fn array_mut(&mut self, k: u32) -> &mut LruArray {
        &mut self.arrays[(k - 2) as usize]
    }
}

impl PwCache for Stc {
    fn lookup(&mut self, vpn: u64) -> Option<u32> {
        self.stats.lookups = self.stats.lookups.saturating_add(1);
        for k in 2..=self.levels {
            let key = (k, tag(vpn, k));
            if self.arrays[(k - 2) as usize].contains(key) {
                self.array_mut(k).touch(key);
                self.stats.hits_at[k as usize] += 1;
                return Some(k);
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        None
    }

    fn probe(&self, vpn: u64) -> Option<u32> {
        (2..=self.levels).find(|&k| self.arrays[(k - 2) as usize].contains((k, tag(vpn, k))))
    }

    fn insert(&mut self, vpn: u64, k: u32) {
        debug_assert!((2..=self.levels).contains(&k));
        let key = (k, tag(vpn, k));
        self.array_mut(k).insert(key);
    }

    fn invalidate(&mut self, vpn: u64, k: u32) {
        let key = (k, tag(vpn, k));
        self.array_mut(k).remove(key);
    }

    fn flush(&mut self) {
        for array in &mut self.arrays {
            array.clear();
        }
    }

    fn stats(&self) -> &PwCacheStats {
        &self.stats
    }

    fn levels(&self) -> u32 {
        self.levels
    }
}

/// An infinite page-walk cache (only cold misses), for the Fig. 4
/// "room for improvement" study.
#[derive(Debug, Clone)]
pub struct InfinitePwc {
    entries: DetSet<(u32, u64)>,
    levels: u32,
    stats: PwCacheStats,
}

impl InfinitePwc {
    /// Creates an empty infinite cache for a `levels`-level table.
    pub fn new(levels: u32) -> Self {
        Self {
            entries: DetSet::new(),
            levels,
            stats: PwCacheStats::new(levels),
        }
    }
}

impl PwCache for InfinitePwc {
    fn lookup(&mut self, vpn: u64) -> Option<u32> {
        self.stats.lookups = self.stats.lookups.saturating_add(1);
        for k in 2..=self.levels {
            if self.entries.contains(&(k, tag(vpn, k))) {
                self.stats.hits_at[k as usize] += 1;
                return Some(k);
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        None
    }

    fn probe(&self, vpn: u64) -> Option<u32> {
        (2..=self.levels).find(|&k| self.entries.contains(&(k, tag(vpn, k))))
    }

    fn insert(&mut self, vpn: u64, k: u32) {
        self.entries.insert((k, tag(vpn, k)));
    }

    fn invalidate(&mut self, vpn: u64, k: u32) {
        self.entries.remove(&(k, tag(vpn, k)));
    }

    fn flush(&mut self) {
        self.entries.clear();
    }

    fn stats(&self) -> &PwCacheStats {
        &self.stats
    }

    fn levels(&self) -> u32 {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_longest_prefix_wins() {
        let mut utc = Utc::new(16, 5);
        utc.insert(0xABCDEF, 5);
        utc.insert(0xABCDEF, 4);
        utc.insert(0xABCDEF, 2);
        assert_eq!(utc.lookup(0xABCDEF), Some(2));
        assert_eq!(utc.stats().hits_at[2], 1);
    }

    #[test]
    fn utc_prefix_sharing_across_vpns() {
        let mut utc = Utc::new(16, 5);
        utc.insert(0, 2); // tag = 0 >> 9 = 0
        // A neighbouring page in the same leaf table shares the L2 entry.
        assert_eq!(utc.lookup(1), Some(2));
        // A page in a different leaf table does not.
        assert_eq!(utc.lookup(1 << BITS_PER_LEVEL), None);
    }

    #[test]
    fn utc_miss_recorded() {
        let mut utc = Utc::new(16, 5);
        assert_eq!(utc.lookup(42), None);
        assert_eq!(utc.stats().misses, 1);
        assert_eq!(utc.stats().lookups, 1);
        assert_eq!(utc.stats().hit_rate(), 0.0);
    }

    #[test]
    fn utc_lru_eviction_across_levels() {
        let mut utc = Utc::new(2, 5);
        utc.insert(0, 2);
        utc.insert(0, 3);
        utc.insert(0, 4); // evicts the level-2 entry (LRU)
        assert_eq!(utc.occupancy(), 2);
        assert_eq!(utc.lookup(0), Some(3));
    }

    #[test]
    fn utc_invalidate() {
        let mut utc = Utc::new(8, 5);
        utc.insert(7, 2);
        utc.invalidate(7, 2);
        assert_eq!(utc.lookup(7), None);
    }

    #[test]
    fn stc_keeps_upper_levels_under_l2_pressure() {
        // Each per-level array holds its own entries: filling L2 does not
        // evict L5 (the §V-C argument for STC).
        let mut stc = Stc::new(&[2, 2, 2, 2], 5);
        stc.insert(0, 5);
        // Thrash L2 with non-overlapping prefixes far from vpn 0's L5 tag.
        for i in 1..100u64 {
            stc.insert(i << BITS_PER_LEVEL, 2);
        }
        // L5 entry for vpn 0 must survive.
        assert_eq!(stc.lookup(0), Some(5));
    }

    #[test]
    fn stc_paper_default_sizes() {
        let stc = Stc::paper_default(5);
        assert_eq!(stc.arrays.len(), 4);
        assert_eq!(stc.arrays[0].capacity, 64); // L2
        assert_eq!(stc.arrays[1].capacity, 32); // L3
        assert_eq!(stc.arrays[2].capacity, 16); // L4
        assert_eq!(stc.arrays[3].capacity, 16); // L5
    }

    #[test]
    fn infinite_pwc_never_evicts() {
        let mut pwc = InfinitePwc::new(5);
        for vpn in 0..10_000u64 {
            pwc.insert(vpn, 2);
        }
        for vpn in 0..10_000u64 {
            assert_eq!(pwc.lookup(vpn), Some(2));
        }
        assert_eq!(pwc.stats().misses, 0);
    }

    #[test]
    fn stats_rates() {
        let mut utc = Utc::new(8, 5);
        utc.insert(0, 2);
        utc.lookup(0); // hit at 2
        utc.lookup(1 << 40); // miss
        let s = utc.stats();
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(s.hit_rate_at(2), 0.5);
        assert_eq!(s.hit_rate_at_or_below(3), 0.5);
        assert_eq!(s.hit_rate_at(4), 0.0);
    }

    #[test]
    #[should_panic(expected = "one capacity per cached level")]
    fn stc_capacity_mismatch_panics() {
        let _ = Stc::new(&[1, 2], 5);
    }

    #[test]
    fn flush_empties_caches_but_keeps_stats() {
        let caches: Vec<Box<dyn PwCache>> = vec![
            Box::new(Utc::new(16, 5)),
            Box::new(Stc::paper_default(5)),
            Box::new(InfinitePwc::new(5)),
        ];
        for mut pwc in caches {
            pwc.insert(0x1234, 3);
            assert_eq!(pwc.lookup(0x1234), Some(3));
            let lookups_before = pwc.stats().lookups;
            pwc.flush();
            assert_eq!(pwc.probe(0x1234), None, "flush drops entries");
            assert_eq!(pwc.stats().lookups, lookups_before, "flush preserves stats");
            pwc.insert(0x1234, 2);
            assert_eq!(pwc.lookup(0x1234), Some(2), "cache usable after flush");
        }
    }
}
