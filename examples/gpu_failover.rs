//! GPU-failover demo and CI smoke run: kill a GPU mid-run, watch the
//! recovery protocol drain, invalidate, migrate and rebuild, then verify
//! that a crashed checkpointed run restores bit-identically.
//!
//! ```sh
//! cargo run --release --example gpu_failover [APP] [OFFLINE_AT] [DURATION]
//! ```

use transfw_sim::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "KM".into());
    let at_cycle: u64 = args
        .next()
        .map(|s| s.parse().expect("OFFLINE_AT must be an integer cycle"))
        .unwrap_or(2_000);
    let duration: u64 = args
        .next()
        .map(|s| s.parse().expect("DURATION must be a positive cycle count"))
        .unwrap_or(4_000);

    let app = workloads::app(&name)
        .unwrap_or_else(|| panic!("unknown app {name:?}"))
        .scaled(0.1);

    let clean = System::new(SystemConfig::with_transfw())
        .run(&app)
        .expect("clean run must pass the auditor");

    let mut cfg = SystemConfig {
        faults: FaultPlan::components(vec![ComponentEvent::GpuOffline {
            gpu: 1,
            at_cycle,
            duration,
        }]),
        ..SystemConfig::with_transfw()
    };
    cfg.checkpoint_interval = Some(1_000);
    let failed = System::new(cfg.clone())
        .run(&app)
        .expect("run with a GPU failure must still complete and pass the auditor");

    println!(
        "app: {} (GPU 1 offline at cycle {at_cycle} for {duration} cycles)",
        app.name
    );
    println!(
        "  cycles:          {} clean -> {} with failure ({:+.1}%)",
        clean.total_cycles,
        failed.total_cycles,
        (failed.total_cycles as f64 / clean.total_cycles as f64 - 1.0) * 100.0
    );
    let c = failed.recovery;
    println!(
        "  failure:         {} offline event(s), {} rejoin(s), {} walks re-issued, {} events deferred",
        c.gpu_offline_events, c.gpu_rejoins, c.reissued_walks, c.deferred_events
    );
    println!(
        "  recovery:        {} FT invalidations, {} pages migrated off the victim, {} PRT rebuild(s)",
        c.ft_invalidations, c.ownership_migrations, c.prt_rebuilds
    );
    println!(
        "  checkpoints:     {} epochs recorded",
        c.checkpoints_taken
    );
    println!(
        "  retired:         {}/{} requests (auditor: exactly-once)",
        failed.resilience.requests_retired, failed.translation_requests
    );
    assert_eq!(
        failed.mem_instructions, clean.mem_instructions,
        "a component failure must never lose work"
    );
    assert!(c.ownership_migrations > 0, "the victim held pages");

    // Crash the same run mid-flight and restore from the checkpoint log:
    // deterministic replay must reproduce every epoch digest bit-identically.
    let crash_at = at_cycle + duration / 2;
    let outcome = run_with_restore(&cfg, &app, crash_at)
        .expect("restore must replay the crashed run's checkpoint prefix");
    println!(
        "  restore:         crashed at cycle {crash_at} with {} epoch(s); replay verified {}",
        outcome.crashed_epochs,
        if outcome.restored { "bit-identical" } else { "(run finished before the crash point)" }
    );
    if outcome.restored {
        assert_eq!(outcome.metrics.total_cycles, failed.total_cycles);
        assert_eq!(
            outcome.metrics.resilience.requests_retired,
            failed.resilience.requests_retired
        );
    }
    println!("OK: failure survived, ownership migrated, restore bit-identical");
}
