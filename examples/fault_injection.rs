//! Fault-injection demo and CI smoke run: run a sharing-heavy workload
//! under interconnect chaos and print what the watchdogs had to do.
//!
//! ```sh
//! cargo run --release --example fault_injection [APP] [DROP_PROB]
//! ```

use transfw_sim::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "MT".into());
    let drop_prob: f64 = args
        .next()
        .map(|s| s.parse().expect("DROP_PROB must be a float"))
        .unwrap_or(0.01);

    let app = workloads::app(&name)
        .unwrap_or_else(|| panic!("unknown app {name:?}"))
        .scaled(0.1);

    let clean = System::new(SystemConfig::with_transfw())
        .run(&app)
        .expect("clean run must pass the auditor");

    let cfg = SystemConfig {
        faults: FaultPlan::message_chaos(42, drop_prob, 300),
        ..SystemConfig::with_transfw()
    };
    let faulty = System::new(cfg)
        .run(&app)
        .expect("faulty run must still complete and pass the auditor");

    println!("app: {} (drop/delay/dup prob {drop_prob})", app.name);
    println!(
        "  cycles:          {} clean -> {} faulty ({:+.1}%)",
        clean.total_cycles,
        faulty.total_cycles,
        (faulty.total_cycles as f64 / clean.total_cycles as f64 - 1.0) * 100.0
    );
    let inj = faulty.resilience.faults_injected;
    println!(
        "  injected:        {} dropped, {} delayed, {} duplicated, {} walker stalls",
        inj.messages_dropped, inj.messages_delayed, inj.messages_duplicated, inj.walker_stalls
    );
    let r = faulty.resilience;
    println!(
        "  recovered:       {} timeouts, {} retries, {} fallback walks, {} duplicates suppressed",
        r.remote_timeouts, r.retries, r.fallback_walks, r.duplicates_suppressed
    );
    println!(
        "  retired:         {}/{} requests (auditor: exactly-once)",
        r.requests_retired, faulty.translation_requests
    );

    assert_eq!(
        faulty.mem_instructions, clean.mem_instructions,
        "fault injection must never lose work"
    );
    println!("OK: workload completed under injection with zero leaked requests");
}
