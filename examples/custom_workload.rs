//! Bringing your own workload: implement [`Workload`] for a custom
//! application and evaluate it under every placement policy, with and
//! without Trans-FW.
//!
//! The example models a producer–consumer pipeline: GPU 0's CTAs write a
//! ring of buffer pages that the other GPUs' CTAs read — an adversarial
//! pattern for on-touch migration (the buffers ping-pong on every handoff).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use transfw_sim::prelude::*;
use transfw_sim::uvm::MigrationPolicy;

/// A producer–consumer pipeline over a shared ring of buffer pages.
#[derive(Debug)]
struct Pipeline {
    ring_pages: u64,
    ctas: usize,
    accesses: usize,
}

struct PipelineStream {
    rng: transfw_sim::sim_core::SimRng,
    producer: bool,
    ring_pages: u64,
    remaining: usize,
    pos: u64,
}

impl AccessStream for PipelineStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Sweep the ring; producers write, consumers read.
        if self.rng.chance(0.25) {
            self.pos = (self.pos + 1) % self.ring_pages;
        }
        Some(Access {
            vpn: self.pos,
            is_write: self.producer,
            compute: 30 + self.rng.gen_range(40),
        })
    }
}

impl Workload for Pipeline {
    fn name(&self) -> &str {
        "pipeline"
    }

    fn footprint_pages(&self) -> u64 {
        self.ring_pages
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        // The first quarter of CTAs (i.e. GPU 0 under greedy placement)
        // produce; the rest consume.
        Box::new(PipelineStream {
            rng: transfw_sim::sim_core::SimRng::new(seed ^ cta as u64),
            producer: cta < self.ctas / 4,
            ring_pages: self.ring_pages,
            remaining: self.accesses,
            pos: (cta as u64 * 17) % self.ring_pages,
        })
    }

    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        Some((vpn % u64::from(gpus)) as u16)
    }
}

fn main() {
    let app = Pipeline {
        ring_pages: 2048,
        ctas: 512,
        accesses: 150,
    };

    println!("policy           | baseline cycles | Trans-FW cycles | speedup | faults b/t");
    println!("-----------------+-----------------+-----------------+---------+-----------");
    let policies = [
        ("on-touch", MigrationPolicy::OnTouch),
        ("replication", MigrationPolicy::ReadReplication),
        ("remote-mapping", MigrationPolicy::RemoteMapping { migrate_threshold: 8 }),
    ];
    for (label, policy) in policies {
        let base_cfg = SystemConfig {
            policy,
            ..SystemConfig::baseline()
        };
        let tfw_cfg = SystemConfig {
            policy,
            ..SystemConfig::with_transfw()
        };
        let base = System::new(base_cfg).run(&app).unwrap();
        let tfw = System::new(tfw_cfg).run(&app).unwrap();
        println!(
            "{label:16} | {:>15} | {:>15} | {:>6.3}x | {}/{}",
            base.total_cycles,
            tfw.total_cycles,
            tfw.speedup_vs(&base),
            base.local_faults,
            tfw.local_faults,
        );
    }
}
