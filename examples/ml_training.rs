//! Multi-GPU ML training under UVM (§V-J): VGG16 and ResNet18 in data
//! parallelism, comparing the baseline, Trans-FW, and Trans-FW combined
//! with read replication (weights are read-shared, so replication and
//! forwarding compose).
//!
//! ```sh
//! cargo run --release --example ml_training [SCALE]
//! ```

use transfw_sim::prelude::*;
use transfw_sim::uvm::MigrationPolicy;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);

    for model in [workloads::vgg16().scaled(scale), workloads::resnet18().scaled(scale)] {
        println!("=== {} (data-parallel, 4 GPUs) ===", model.name);
        let base = System::new(SystemConfig::baseline()).run(&model).unwrap();
        let tfw = System::new(SystemConfig::with_transfw()).run(&model).unwrap();
        let repl_cfg = SystemConfig {
            policy: MigrationPolicy::ReadReplication,
            ..SystemConfig::with_transfw()
        };
        let tfw_repl = System::new(repl_cfg).run(&model).unwrap();

        println!("  baseline          : {:>12} cycles ({} faults)", base.total_cycles, base.local_faults);
        println!(
            "  Trans-FW          : {:>12} cycles ({:.3}x)",
            tfw.total_cycles,
            tfw.speedup_vs(&base)
        );
        println!(
            "  Trans-FW + replic.: {:>12} cycles ({:.3}x)",
            tfw_repl.total_cycles,
            tfw_repl.speedup_vs(&base)
        );
        let (r, w) = base.sharing.shared_rw();
        println!(
            "  shared-page traffic: {:.0}% reads / {:.0}% writes",
            100.0 * r as f64 / (r + w).max(1) as f64,
            100.0 * w as f64 / (r + w).max(1) as f64
        );
        println!();
    }
}
