//! Page-sharing analysis across the whole application suite: the
//! motivational study of §III (Figs. 3 and 7) as a runnable tool.
//!
//! For every Table III application this prints the access-weighted sharing
//! degree, the measured PFPKI, and where the L2-TLB-miss latency goes —
//! the data that motivates Trans-FW's short-circuiting design.
//!
//! ```sh
//! cargo run --release --example page_sharing_profile [SCALE]
//! ```

use transfw_sim::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    println!("app     | shared by 1/2/3/4 GPUs (% accesses) | PFPKI  | fault share of L2-miss latency");
    println!("--------+-------------------------------------+--------+-------------------------------");
    for spec in workloads::all_apps() {
        let app = spec.scaled(scale);
        let m = System::new(SystemConfig::baseline()).run(&app).unwrap();
        let deg = m.sharing.access_fraction_by_degree(4);
        let fault_share = sim_core::stats::ratio(m.breakdown.fault_total(), m.breakdown.total());
        println!(
            "{:7} |        {:>4.0} /{:>4.0} /{:>4.0} /{:>4.0}      | {:>6.2} | {:>5.1}%",
            app.name,
            deg[0] * 100.0,
            deg[1] * 100.0,
            deg[2] * 100.0,
            deg[3] * 100.0,
            m.pfpki(),
            fault_share * 100.0,
        );
    }
    println!();
    println!("High sharing degrees + high PFPKI mark the applications where");
    println!("translation forwarding pays off (compare Fig. 11 of the paper).");
}
