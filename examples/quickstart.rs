//! Quickstart: run one application on the 4-GPU baseline and on Trans-FW,
//! and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart [APP] [SCALE]
//! ```
//!
//! `APP` is a Table III abbreviation (default `MT`); `SCALE` scales the
//! amount of work (default 1.0).

use transfw_sim::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("MT");
    let scale: f64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let app = workloads::app(app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}; try MT, PR, KM, …"))
        .scaled(scale);

    println!("running {} at scale {scale} on the Table II 4-GPU system…", app.name);

    let baseline = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let transfw = System::new(SystemConfig::with_transfw()).run(&app).unwrap();

    println!();
    println!("                        baseline      Trans-FW");
    println!(
        "execution cycles    {:>12}  {:>12}",
        baseline.total_cycles, transfw.total_cycles
    );
    println!(
        "memory instructions {:>12}  {:>12}",
        baseline.mem_instructions, transfw.mem_instructions
    );
    println!(
        "local page faults   {:>12}  {:>12}",
        baseline.local_faults, transfw.local_faults
    );
    println!(
        "PFPKI               {:>12.3}  {:>12.3}",
        baseline.pfpki(),
        transfw.pfpki()
    );
    println!(
        "L2 TLB hit rate     {:>12.3}  {:>12.3}",
        baseline.l2_hit_rate(),
        transfw.l2_hit_rate()
    );
    println!();
    println!("Trans-FW mechanisms:");
    println!("  GMMU walks short-circuited : {}", transfw.transfw.gmmu_bypassed);
    println!("  host walks forwarded       : {}", transfw.transfw.forwarded);
    println!("  supplied by remote GPUs    : {}", transfw.transfw.remote_supplied);
    println!("  host walks cancelled       : {}", transfw.transfw.cancelled_host_walks);
    println!();
    println!("speedup: {:.3}x", transfw.speedup_vs(&baseline));
}
