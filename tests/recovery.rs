//! Component-failure recovery acceptance tests: a GPU dropping off the
//! fabric mid-run, link partitions and host-MMU failover must all complete
//! with the invariant auditor clean and every request retired exactly once,
//! and a crashed checkpointed run must restore bit-identically.

use transfw_sim::prelude::*;

fn chaos(cfg: SystemConfig, events: Vec<ComponentEvent>) -> SystemConfig {
    SystemConfig {
        faults: FaultPlan::components(events),
        ..cfg
    }
}

#[test]
fn gpu_offline_mid_run_completes_and_migrates_ownership() {
    // The tentpole scenario: GPU 1 dies in the thick of the run, long enough
    // that it held pages and in-flight walks. The run must complete (the
    // post-run auditor runs inside `run`), retire every request exactly
    // once, and the recovery machinery must actually have fired.
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let cfg = chaos(
        SystemConfig::with_transfw(),
        vec![ComponentEvent::GpuOffline {
            gpu: 1,
            at_cycle: 2_000,
            duration: 4_000,
        }],
    );
    let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
        panic!("KM wedged under GPU offline: {e}");
    });
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
    assert_eq!(
        m.resilience.requests_retired, m.translation_requests,
        "every request must retire exactly once across the failure"
    );
    assert_eq!(m.recovery.gpu_offline_events, 1);
    assert_eq!(m.recovery.gpu_rejoins, 1);
    assert!(
        m.recovery.ft_invalidations > 0,
        "the victim owned pages, so FT entries had to be invalidated: {:?}",
        m.recovery
    );
    assert!(
        m.recovery.ownership_migrations > 0,
        "the victim's pages had to migrate to survivors: {:?}",
        m.recovery
    );
    assert!(
        m.recovery.prt_rebuilds > 0,
        "rejoin must rebuild the PRT from the directory"
    );
}

#[test]
fn gpu_offline_survives_every_app_and_both_fault_modes() {
    for spec in workloads::all_apps() {
        let app = spec.scaled(0.05);
        for driver_mode in [false, true] {
            let mut cfg = chaos(
                SystemConfig::with_transfw(),
                vec![ComponentEvent::GpuOffline {
                    gpu: 2,
                    at_cycle: 1_000,
                    duration: 3_000,
                }],
            );
            if driver_mode {
                cfg.fault_mode = mgpu::FarFaultMode::UvmDriver;
            }
            let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
                panic!("{} wedged (driver_mode={driver_mode}): {e}", app.name);
            });
            assert_eq!(
                m.mem_instructions,
                (app.ctas * app.accesses_per_cta) as u64,
                "{} lost instructions",
                app.name
            );
            assert_eq!(m.resilience.requests_retired, m.translation_requests);
            assert_eq!(m.recovery.gpu_offline_events, 1, "{}", app.name);
        }
    }
}

#[test]
fn overlapping_offline_windows_extend_instead_of_double_draining() {
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let cfg = chaos(
        SystemConfig::with_transfw(),
        vec![
            ComponentEvent::GpuOffline {
                gpu: 0,
                at_cycle: 1_000,
                duration: 2_000,
            },
            ComponentEvent::GpuOffline {
                gpu: 0,
                at_cycle: 2_000,
                duration: 4_000,
            },
        ],
    );
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.recovery.gpu_offline_events, 2);
    // One logical outage: only the extended window's rejoin counts.
    assert_eq!(m.recovery.gpu_rejoins, 1);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn link_partition_reroutes_peer_traffic_via_host() {
    // Sever the pair carrying forwarded supplies: traffic must detour over
    // the host links (counted) instead of hanging, and the run completes.
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let mut events = Vec::new();
    for (a, b) in [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        events.push(ComponentEvent::LinkPartition {
            a,
            b,
            at_cycle: 500,
            duration: 20_000,
        });
    }
    let m = System::new(chaos(SystemConfig::with_transfw(), events))
        .run(&app)
        .unwrap();
    assert_eq!(m.recovery.link_partition_events, 6);
    assert!(
        m.recovery.rerouted_messages > 0,
        "a full partition must force peer traffic through the host: {:?}",
        m.recovery
    );
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn host_failover_stalls_then_drains() {
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let clean = System::new(SystemConfig::with_transfw()).run(&app).unwrap();
    let m = System::new(chaos(
        SystemConfig::with_transfw(),
        vec![ComponentEvent::HostMmuFailover {
            at_cycle: 1_000,
            stall: 5_000,
        }],
    ))
    .run(&app)
    .unwrap();
    assert_eq!(m.recovery.host_failover_events, 1);
    assert_eq!(m.mem_instructions, clean.mem_instructions);
    assert!(
        m.total_cycles >= clean.total_cycles,
        "a host stall cannot speed the run up: {} vs {}",
        m.total_cycles,
        clean.total_cycles
    );
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn combined_chaos_gpu_loss_partition_and_failover() {
    // Everything at once, in both fault modes, with message loss on top.
    let app = workloads::app("PR").unwrap().scaled(0.1);
    for driver_mode in [false, true] {
        let mut plan = FaultPlan::message_loss(17, 0.01);
        plan.component_events = vec![
            ComponentEvent::GpuOffline {
                gpu: 1,
                at_cycle: 1_500,
                duration: 3_000,
            },
            ComponentEvent::LinkPartition {
                a: 0,
                b: 2,
                at_cycle: 1_000,
                duration: 6_000,
            },
            ComponentEvent::HostMmuFailover {
                at_cycle: 4_000,
                stall: 2_000,
            },
        ];
        let mut cfg = SystemConfig::with_transfw();
        cfg.faults = plan;
        if driver_mode {
            cfg.fault_mode = mgpu::FarFaultMode::UvmDriver;
        }
        let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
            panic!("combined chaos wedged (driver_mode={driver_mode}): {e}");
        });
        assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
        assert_eq!(m.resilience.requests_retired, m.translation_requests);
        assert_eq!(m.recovery.gpu_offline_events, 1);
        assert_eq!(m.recovery.link_partition_events, 1);
        assert_eq!(m.recovery.host_failover_events, 1);
    }
}

#[test]
fn checkpoint_restore_is_bit_identical() {
    // A chaos run with epoch checkpoints is "crashed" mid-flight and then
    // restored: deterministic replay must reproduce the crashed run's every
    // epoch digest, and the restored metrics must equal an uninterrupted
    // same-seed run's.
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let mut cfg = chaos(
        SystemConfig::with_transfw(),
        vec![ComponentEvent::GpuOffline {
            gpu: 1,
            at_cycle: 2_000,
            duration: 4_000,
        }],
    );
    cfg.checkpoint_interval = Some(1_000);

    let uninterrupted = System::new(cfg.clone()).run(&app).unwrap();
    assert!(uninterrupted.recovery.checkpoints_taken > 2);

    let outcome = run_with_restore(&cfg, &app, 5_000).unwrap();
    assert!(outcome.restored, "the crash point must precede completion");
    assert!(
        outcome.crashed_epochs > 0,
        "the crashed run must have recorded epochs to restore from"
    );
    let mut restored = outcome.metrics;
    assert_eq!(restored.recovery.restores_performed, 1);
    restored.recovery.restores_performed = 0; // the only permitted delta
    assert_eq!(
        restored, uninterrupted,
        "restore must replay bit-identically to the uninterrupted run"
    );
}

#[test]
fn checkpointing_a_fault_free_run_changes_nothing_but_the_counter() {
    let app = workloads::app("AES").unwrap().scaled(0.05);
    let plain = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let mut cfg = SystemConfig::baseline();
    cfg.checkpoint_interval = Some(500);
    let mut checked = System::new(cfg).run(&app).unwrap();
    assert!(checked.recovery.checkpoints_taken > 0);
    checked.recovery.checkpoints_taken = 0;
    assert_eq!(
        checked, plain,
        "checkpoints are pure observation: no timing or metric drift"
    );
}

#[test]
fn empty_plan_recovery_counters_stay_zero() {
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let m = System::new(SystemConfig::with_transfw()).run(&app).unwrap();
    assert_eq!(m.recovery, RecoveryStats::default());
}
