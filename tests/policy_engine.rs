//! Integration tests for the `uvm::policy` placement engine: the
//! first-touch default must be a strict superset of the legacy fault path
//! (bit-identical metrics), and each shipped policy must shape page
//! movement the way its design says — with every ownership change flowing
//! through the transactional PRT/FT/TLB plumbing the post-run invariant
//! auditor certifies.

use transfw_sim::prelude::*;
use transfw_sim::uvm::PolicyKind;

const SCALE: f64 = 0.1;

fn run_placement(placement: Option<PolicyKind>, cfg: SystemConfig, app: &dyn Workload) -> RunMetrics {
    System::new(SystemConfig { placement, ..cfg }).run(app).unwrap()
}

/// The acceptance gate: routing the default policy through the new engine
/// must not perturb a single counter relative to leaving `placement` unset
/// (which derives `FirstTouch` from the legacy `policy` field).
#[test]
fn explicit_first_touch_is_bit_identical_to_default() {
    for (name, cfg) in [
        ("baseline", SystemConfig::baseline()),
        ("transfw", SystemConfig::with_transfw()),
    ] {
        for app_name in ["AES", "KM", "MT"] {
            let app = workloads::app(app_name).unwrap().scaled(0.05);
            let implicit = run_placement(None, cfg.clone(), &app);
            let explicit = run_placement(Some(PolicyKind::FirstTouch), cfg.clone(), &app);
            assert_eq!(
                implicit, explicit,
                "{name}/{app_name}: placement=Some(FirstTouch) drifted from the default"
            );
        }
    }
}

#[test]
fn legacy_policy_field_still_selects_equivalent_engine() {
    // `policy: ReadReplication` with no explicit placement must behave as
    // `placement: ReadDuplicate` — the From conversion is the compat shim.
    let app = workloads::app("SC").unwrap().scaled(SCALE);
    let legacy = System::new(SystemConfig {
        policy: transfw_sim::uvm::MigrationPolicy::ReadReplication,
        ..SystemConfig::baseline()
    })
    .run(&app)
    .unwrap();
    let engine = run_placement(Some(PolicyKind::ReadDuplicate), SystemConfig::baseline(), &app);
    assert_eq!(legacy, engine, "legacy ReadReplication != ReadDuplicate engine");
}

#[test]
fn delayed_migration_defers_movement_until_threshold() {
    // A high threshold under PR's random sharing: pages stay remote-mapped
    // far longer than under eager first touch.
    let app = workloads::app("PR").unwrap().scaled(SCALE);
    let eager = run_placement(Some(PolicyKind::FirstTouch), SystemConfig::baseline(), &app);
    let delayed = run_placement(
        Some(PolicyKind::DelayedMigration { threshold: 64 }),
        SystemConfig::baseline(),
        &app,
    );
    assert!(
        delayed.directory.migrations < eager.directory.migrations,
        "threshold 64 must defer migrations: {} vs {}",
        delayed.directory.migrations,
        eager.directory.migrations
    );
    assert!(delayed.directory.remote_maps > 0, "deferred faults remote-map");
}

#[test]
fn read_duplicate_replicates_and_collapses() {
    let app = workloads::app("MT").unwrap().scaled(SCALE);
    let m = run_placement(Some(PolicyKind::ReadDuplicate), SystemConfig::with_transfw(), &app);
    assert!(m.directory.replications > 0, "read-shared pages must replicate");
    assert!(
        m.placement.collapses > 0,
        "MT's shared writes must collapse replicas"
    );
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn prefetch_neighborhood_moves_extra_pages() {
    let app = workloads::phase_shift().scaled(0.05);
    let plain = run_placement(Some(PolicyKind::FirstTouch), SystemConfig::with_transfw(), &app);
    let pf = run_placement(
        Some(PolicyKind::PrefetchNeighborhood { radius: 3 }),
        SystemConfig::with_transfw(),
        &app,
    );
    assert!(pf.placement.prefetched_pages > 0, "prefetcher never fired");
    assert_eq!(
        pf.directory.prefetches,
        pf.placement.prefetched_pages,
        "directory and memory-system prefetch tallies must agree"
    );
    assert_eq!(plain.placement.prefetched_pages, 0, "first touch never prefetches");
    // Latency accounting: the migration log only records data movements.
    assert!(pf.placement.migration_latency.count() >= pf.directory.migrations);
}

#[test]
fn policies_survive_fault_injection_with_exact_retirement() {
    // The transactional path stays subject to the injector's table-update
    // drops; retire-exactly-once and the invariant audit must hold anyway.
    let app = workloads::app("KM").unwrap().scaled(0.05);
    for kind in [
        PolicyKind::DelayedMigration { threshold: 2 },
        PolicyKind::ReadDuplicate,
        PolicyKind::PrefetchNeighborhood { radius: 2 },
    ] {
        let mut cfg = SystemConfig::with_transfw();
        cfg.faults = transfw_sim::sim_core::FaultPlan::message_chaos(11, 0.02, 200);
        cfg.placement = Some(kind);
        let m = System::new(cfg).run(&app).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{kind:?} lost or duplicated a request under chaos"
        );
    }
}
