//! Oversubscription acceptance tests: the eviction engine, thrash
//! detection, and graceful degradation under memory pressure. The
//! subsystem ships disabled; with [`OversubConfig::default`] every run is
//! bit-identical to a build without it (the goldens in `resilience.rs`
//! enforce that), and these tests exercise the enabled side: capacity
//! pressure on the working-set-shift workload, the refault-driven thrash
//! gate, the evict-vs-in-flight-forward race on the recovery path, and
//! replay/restore determinism with eviction on.

use transfw_sim::prelude::*;
use transfw_sim::uvm::{EvictPolicy, PolicyKind};

/// Oversubscription tuned for test-scale runs: the shipped thrash
/// watermarks are sized for full-scale refault storms and would never
/// engage at a CI-sized scale.
fn test_oversub(capacity: usize) -> OversubConfig {
    OversubConfig {
        thrash_high: 4,
        thrash_low: 1,
        refault_window: 50_000,
        hot_protect: 8,
        ..OversubConfig::with_capacity(capacity)
    }
}

/// Trans-FW knobs with the PRT/FT sized up: the shift workload's eviction
/// and migration churn at test scale otherwise produces enough
/// fingerprint-collision deletes to trip the post-run PRT false-negative
/// audit (a pre-existing property of the paper-sized 500-entry tables,
/// independent of the oversubscription machinery).
fn big_tables() -> mgpu::TransFwKnobs {
    let mut k = mgpu::TransFwKnobs::full();
    k.config.prt_fingerprints = 2_000;
    k.config.prt_fp_bits = 16;
    k.config.ft_fingerprints = 4_000;
    k.config.ft_fp_bits = 14;
    k
}

fn shift_app(scale: f64) -> workloads::OversubShift {
    workloads::oversub_shift().scaled(scale)
}

#[test]
fn disabled_oversub_reports_nothing() {
    // The master switch defaults off: a run over a footprint far beyond
    // any real device capacity must finish with the oversub stats exactly
    // at `Default` — no evictions, no refaults, no deferred recovery
    // evictions — because capacity is treated as infinite.
    let app = shift_app(0.05);
    let m = System::new(SystemConfig::with_transfw()).run(&app).unwrap();
    assert_eq!(m.oversub, OversubStats::default());
    assert_eq!(m.recovery.deferred_evictions, 0);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn capacity_pressure_evicts_and_still_retires_every_request() {
    // The acceptance scenario: per-GPU capacity sits below the warm
    // stripe (the first epoch's 256-page working set striped 128/GPU
    // across 2 GPUs), so the run starts over-subscribed and steady-state
    // demand migration must evict to make room. The run must complete
    // with every request retired exactly once, real eviction traffic, and
    // no eviction ever victimising a pinned page in a way that breaks the
    // protocol (the invariant auditor inside `run` and the post-run table
    // audits enforce agreement).
    let app = shift_app(0.05);
    let capacity = workloads::oversub_shift().working_set_pages as usize / 4;
    let cfg = SystemConfig::builder()
        .gpus(2)
        .cus_per_gpu(4)
        .seed(11)
        .transfw(Some(big_tables()))
        .oversub(test_oversub(capacity))
        .build();
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert!(
        m.oversub.evictions > 0,
        "2x oversubscription must force evictions: {:?}",
        m.oversub
    );
}

#[test]
fn thrash_gate_trips_and_degrades_instead_of_collapsing() {
    // Capacity far below the working set turns the epoch shifts into a
    // refault storm. The thrash gate must trip, and while engaged the
    // system degrades gracefully: background prefetch traffic is shed
    // and/or cold demand faults fall back to host-mediated direct access —
    // but the run still completes with every request retired.
    let app = shift_app(0.05);
    let oversub = OversubConfig {
        thrash_high: 3,
        thrash_low: 1,
        refault_window: 1_000_000,
        hot_protect: 8,
        ..OversubConfig::with_capacity(16)
    };
    let cfg = SystemConfig::builder()
        .gpus(2)
        .cus_per_gpu(4)
        .seed(7)
        .transfw(Some(big_tables()))
        .placement(Some(PolicyKind::PrefetchNeighborhood { radius: 3 }))
        .oversub(oversub)
        .build();
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    let os = &m.oversub;
    assert!(os.evictions > 0, "tiny capacity must evict: {os:?}");
    assert!(os.refaults > 0, "the shift must refault on evicted pages: {os:?}");
    assert!(os.thrash_trips > 0, "the refault storm must trip the gate: {os:?}");
    assert!(
        os.background_shed + os.direct_fallbacks > 0,
        "an engaged gate must shed background or fall back to direct access: {os:?}"
    );
}

#[test]
fn offline_eviction_defers_until_forwarded_walks_retire() {
    // Satellite regression: a GPU goes offline while forwarded walks are
    // in flight on heavily delayed links. The recovery path must consult
    // the pin set and defer ownership migration for pages whose forwarded
    // walk is still outstanding (completing the eviction at retire time)
    // rather than yanking ownership out from under the reply. The pin set
    // is maintained unconditionally, so the race is covered with the
    // eviction engine both on and off; this drives it with eviction on and
    // sweeps the offline instant so at least one point lands mid-flight.
    let app = shift_app(0.05);
    let footprint = workloads::oversub_shift().footprint_pages() as usize;
    let mut deferred_total = 0;
    for at_cycle in [1_000, 2_000, 3_000, 5_000] {
        let plan = FaultPlan {
            message_delay_prob: 0.6,
            message_delay_cycles: 2_000,
            component_events: vec![ComponentEvent::GpuOffline {
                gpu: 1,
                at_cycle,
                duration: 4_000,
            }],
            ..FaultPlan::none()
        };
        let cfg = SystemConfig::builder()
            .gpus(4)
            .cus_per_gpu(4)
            .seed(13)
            .transfw(Some(big_tables()))
            .oversub(test_oversub(footprint / 4))
            .faults(plan)
            .build();
        let m = System::new(cfg).run(&app).unwrap();
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "offline at {at_cycle}: retire-exactly-once violated"
        );
        assert_eq!(m.recovery.gpu_offline_events, 1);
        deferred_total += m.recovery.deferred_evictions;
    }
    assert!(
        deferred_total > 0,
        "no offline instant caught a forwarded walk in flight; the \
         deferred-eviction path went unexercised"
    );
}

#[test]
fn enabled_oversub_replays_bit_identically_under_chaos() {
    // Replay determinism with everything on at once: chaos faults, the
    // eviction engine, the thrash gate's refault windows. Two runs must
    // agree on every metric including the oversub counters. Capacity sits
    // below the warm stripe so the replay pair carries real eviction
    // traffic.
    let app = shift_app(0.05);
    let capacity = workloads::oversub_shift().working_set_pages as usize / 4;
    let run = || {
        let mut cfg = SystemConfig::builder()
            .gpus(2)
            .cus_per_gpu(4)
            .seed(23)
            .transfw(Some(big_tables()))
            .oversub(test_oversub(capacity))
            .build();
        cfg.faults = FaultPlan::message_chaos(77, 0.05, 300);
        System::new(cfg).run(&app).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "enabled oversub run must replay bit-identically");
    assert!(a.oversub.evictions > 0, "the replay pair must actually evict");
    assert_eq!(a.resilience.requests_retired, a.translation_requests);
}

#[test]
fn random_ratios_policies_and_plans_never_leak_and_restore_cleanly() {
    // Seeded pseudo-proptest (satellite): random oversubscription ratios x
    // every placement policy x random fault plans x both eviction
    // policies, eviction on throughout. Invariants: the run completes,
    // every request retires exactly once (the auditor inside `run` also
    // enforces this), no PRT-pending page is ever evicted (the pin-set
    // discipline — violations would surface as auditor panics or lost
    // requests), and a crash-and-restore replay is bit-identical.
    use transfw_sim::sim_core::SimRng;
    let policies = [
        PolicyKind::FirstTouch,
        PolicyKind::DelayedMigration { threshold: 2 },
        PolicyKind::ReadDuplicate,
        PolicyKind::PrefetchNeighborhood { radius: 3 },
    ];
    let footprint = workloads::oversub_shift().footprint_pages() as usize;
    for (case, &kind) in policies.iter().enumerate() {
        let mut rng = SimRng::new(0x0E7B_CA5E ^ case as u64);
        let ratio = 1 + rng.gen_index(4); // 1x..4x oversubscription
        let evict = if rng.chance(0.5) {
            EvictPolicy::Lru
        } else {
            EvictPolicy::AccessCounter
        };
        let plan = match rng.gen_index(3) {
            0 => FaultPlan::none(),
            1 => FaultPlan::message_loss(rng.next_u64(), 0.02 + rng.gen_f64() * 0.05),
            _ => FaultPlan::message_chaos(rng.next_u64(), 0.02 + rng.gen_f64() * 0.03, 200),
        };
        let seed = 1 + rng.gen_range(1_000);
        let capacity = footprint.div_ceil(4 * ratio);
        let oversub = OversubConfig {
            policy: evict,
            ..test_oversub(capacity)
        };
        let mut cfg = SystemConfig::builder()
            .gpus(4)
            .cus_per_gpu(4)
            .host_walkers(1)
            .seed(seed)
            .transfw(Some(big_tables()))
            .placement(Some(kind))
            .oversub(oversub)
            .faults(plan)
            .build();
        cfg.checkpoint_interval = Some(2_000);
        let app = shift_app(0.05);
        let baseline = System::new(cfg.clone()).run(&app).unwrap_or_else(|e| {
            panic!("case {case} ({kind:?}, {ratio}x, {evict:?}) failed: {e}")
        });
        assert_eq!(
            baseline.resilience.requests_retired, baseline.translation_requests,
            "case {case} ({kind:?}, {ratio}x): retire-exactly-once violated"
        );
        let outcome = run_with_restore(&cfg, &app, 4_000).unwrap();
        let mut restored = outcome.metrics;
        if outcome.restored {
            assert_eq!(restored.recovery.restores_performed, 1);
            restored.recovery.restores_performed = 0; // the only permitted delta
        }
        assert_eq!(
            restored, baseline,
            "case {case} ({kind:?}, {ratio}x, {evict:?}): restore diverged with eviction on"
        );
    }
}
