//! Fault-injection acceptance tests: every Table III workload must survive
//! interconnect loss, chaos and overload with the protocol watchdogs
//! recovering lost work, and an *empty* fault plan must leave the simulator
//! bit-identical to a build without the resilience layer.

use transfw_sim::prelude::*;

fn faulty(cfg: SystemConfig, plan: FaultPlan) -> SystemConfig {
    SystemConfig { faults: plan, ..cfg }
}

#[test]
fn every_app_survives_one_percent_message_loss() {
    // The headline acceptance scenario: 1% of protocol messages silently
    // dropped. Every workload must run to completion — no hangs, no panics,
    // no leaked requests (the post-run auditor runs inside `run`).
    let mut timeouts = 0u64;
    let mut retries = 0u64;
    for spec in workloads::all_apps() {
        let app = spec.scaled(0.05);
        let cfg = faulty(SystemConfig::with_transfw(), FaultPlan::message_loss(11, 0.01));
        let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
            panic!("{} wedged under 1% loss: {e}", app.name);
        });
        assert_eq!(
            m.mem_instructions,
            (app.ctas * app.accesses_per_cta) as u64,
            "{} lost instructions",
            app.name
        );
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{} must retire every request exactly once",
            app.name
        );
        timeouts += m.resilience.remote_timeouts;
        retries += m.resilience.retries;
    }
    // Across ten apps, some dropped message must have tripped a deadline.
    assert!(timeouts > 0, "1% loss never triggered the watchdog");
    assert!(retries > 0, "timeouts must be retried, not just counted");
}

#[test]
fn heavy_loss_degrades_to_fallback_host_walks() {
    // 30% loss makes losing all retry attempts likely: the watchdog must
    // eventually give up on the lossy path and route the request down the
    // reliable fallback host walk (§IV-C degraded mode).
    let app = workloads::app("MT").unwrap().scaled(0.2);
    let cfg = faulty(SystemConfig::with_transfw(), FaultPlan::message_loss(3, 0.3));
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
    assert!(m.resilience.remote_timeouts > 0);
    assert!(
        m.resilience.fallback_walks > 0,
        "30% loss must exhaust retries somewhere: {:?}",
        m.resilience
    );
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn interconnect_chaos_suppresses_duplicates() {
    // Drop + delay + duplicate together: duplicated supplies/replies must
    // be counted and discarded, never double-retired (the auditor inside
    // `run` enforces retire-exactly-once).
    let app = workloads::app("PR").unwrap().scaled(0.2);
    let cfg = faulty(
        SystemConfig::with_transfw(),
        FaultPlan::message_chaos(5, 0.05, 400),
    );
    let m = System::new(cfg).run(&app).unwrap();
    assert!(
        m.resilience.duplicates_suppressed > 0,
        "5% duplication must produce suppressed copies: {:?}",
        m.resilience
    );
    assert!(m.resilience.faults_injected.messages_duplicated > 0);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn delayed_then_duplicated_replies_never_double_retire() {
    // Regression for the watchdog retry race: a deliberately tiny deadline
    // plus message delays far past it make a retry race the late original
    // reply on almost every remote leg, and heavy duplication lands extra
    // copies of both. A retried fault message reaching the host (either
    // entry path) after the original reply already completed the request
    // must be discarded as a duplicate, never restarted into a second walk
    // that double-retires (the auditor inside `run` enforces exactly-once).
    let plan = FaultPlan {
        message_delay_prob: 0.5,
        message_delay_cycles: 2_000, // well past the shortened deadline
        message_duplicate_prob: 0.25,
        ..FaultPlan::none()
    };
    for driver_mode in [false, true] {
        let app = workloads::app("PR").unwrap().scaled(0.2);
        let mut cfg = faulty(SystemConfig::with_transfw(), plan.clone());
        cfg.watchdog.request_timeout = 500;
        if driver_mode {
            cfg.fault_mode = mgpu::FarFaultMode::UvmDriver;
        }
        let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
            panic!("wedged under retry/duplicate pressure (driver={driver_mode}): {e}")
        });
        assert!(
            m.resilience.remote_timeouts > 0,
            "the shortened deadline must fire (driver={driver_mode}): {:?}",
            m.resilience
        );
        assert!(m.resilience.retries > 0, "driver={driver_mode}");
        assert!(
            m.resilience.duplicates_suppressed > 0,
            "late originals/duplicates must be counted, not re-run \
             (driver={driver_mode}): {:?}",
            m.resilience
        );
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "double retire under retry race (driver={driver_mode})"
        );
    }
}

#[test]
fn walker_stalls_and_host_bursts_only_slow_things_down() {
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let clean = System::new(SystemConfig::baseline())
        .run(&app)
        .unwrap();
    let plan = FaultPlan {
        walker_stall_prob: 0.5,
        walker_stall_cycles: 300,
        host_burst_period: 5_000,
        host_burst_len: 1_000,
        host_burst_extra: 800,
        ..FaultPlan::none()
    };
    let slow = System::new(faulty(SystemConfig::baseline(), plan))
        .run(&app)
        .unwrap();
    assert_eq!(clean.mem_instructions, slow.mem_instructions);
    assert!(
        slow.total_cycles >= clean.total_cycles,
        "stalls cannot make the run faster: {} vs {}",
        slow.total_cycles,
        clean.total_cycles
    );
    assert!(slow.resilience.faults_injected.walker_stalls > 0);
}

#[test]
fn table_pollution_and_stale_entries_are_survivable() {
    // Garbage fingerprints in the PRT/FT plus lost maintenance updates:
    // the filters degrade to false positives / stale owners, which the
    // protocol already treats as discardable — completion must not suffer.
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let plan = FaultPlan {
        table_pollution: 200,
        table_update_drop_prob: 0.2,
        ..FaultPlan::none()
    };
    let m = System::new(faulty(SystemConfig::with_transfw(), plan))
        .run(&app)
        .unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn driver_mode_survives_message_loss_too() {
    let app = workloads::app("KM").unwrap().scaled(0.1);
    let mut cfg = faulty(SystemConfig::with_transfw(), FaultPlan::message_loss(9, 0.05));
    cfg.fault_mode = mgpu::FarFaultMode::UvmDriver;
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn same_fault_seed_replays_identically() {
    // Determinism under injection: the injector's private RNG stream makes
    // two runs with the same plan byte-for-byte equal in every metric.
    let app = workloads::app("SC").unwrap().scaled(0.1);
    let plan = FaultPlan::message_chaos(1234, 0.05, 250);
    let run = || {
        System::new(faulty(SystemConfig::with_transfw(), plan.clone()))
            .run(&app)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.mem_instructions, b.mem_instructions);
    assert_eq!(a.translation_requests, b.translation_requests);
    assert_eq!(a.local_faults, b.local_faults);
    assert_eq!(a.host_walks, b.host_walks);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.transfw, b.transfw);
    assert_eq!(a.resilience, b.resilience);
}

#[test]
fn different_fault_seeds_differ() {
    // Sanity check that the replay test is not vacuous: with faults on,
    // the seed actually steers the injected decisions.
    let app = workloads::app("SC").unwrap().scaled(0.1);
    let run = |seed| {
        System::new(faulty(
            SystemConfig::with_transfw(),
            FaultPlan::message_chaos(seed, 0.05, 250),
        ))
        .run(&app)
        .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.total_cycles, a.resilience.faults_injected),
        (b.total_cycles, b.resilience.faults_injected),
        "different seeds should perturb the run"
    );
}

#[test]
fn empty_plan_injects_nothing_and_counts_nothing() {
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let m = System::new(SystemConfig::with_transfw()).run(&app).unwrap();
    let z = m.resilience;
    assert_eq!(z.remote_timeouts, 0);
    assert_eq!(z.retries, 0);
    assert_eq!(z.fallback_walks, 0);
    assert_eq!(z.duplicates_suppressed, 0);
    assert_eq!(z.faults_injected, Default::default());
    assert_eq!(z.requests_retired, m.translation_requests);
}

#[test]
fn empty_plan_is_bit_identical_to_pre_resilience_baseline() {
    // Golden values captured on the tree *before* the resilience layer
    // landed (seed 7, scale 0.02). The injector draws no randomness under
    // an empty plan and watchdog bookkeeping events are excluded from
    // `total_cycles`, so these must stay exact. If a future change breaks
    // this intentionally (new RNG draws, different event ordering), it is
    // changing fault-free behaviour and must say so.
    let run = |cfg: SystemConfig, name: &str| {
        let app = workloads::app(name).unwrap().scaled(0.02);
        let mut cfg = cfg;
        cfg.seed = 7;
        System::new(cfg).run(&app).unwrap()
    };
    let m = run(SystemConfig::baseline(), "AES");
    assert_eq!((m.total_cycles, m.translation_requests), (3242, 31));
    let m = run(SystemConfig::baseline(), "KM");
    assert_eq!(
        (m.total_cycles, m.local_faults, m.host_walks),
        (3672, 7, 7)
    );
    let m = run(SystemConfig::with_transfw(), "KM");
    assert_eq!(
        (m.total_cycles, m.local_faults, m.host_walks, m.transfw.gmmu_bypassed),
        (3484, 1, 9, 8)
    );
    let mut cfg = SystemConfig::with_transfw();
    cfg.fault_mode = mgpu::FarFaultMode::UvmDriver;
    let m = run(cfg, "KM");
    assert_eq!((m.total_cycles, m.transfw.remote_supplied), (9782, 6));
}

#[test]
fn watchdog_off_still_completes_under_no_faults() {
    let app = workloads::app("FIR").unwrap().scaled(0.05);
    let mut cfg = SystemConfig::with_transfw();
    cfg.watchdog.enabled = false;
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
}

#[test]
fn cycle_cap_reports_instead_of_hanging() {
    // A run that cannot finish inside the cap must surface a typed error,
    // not spin: this is the CI-facing liveness escape hatch.
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let mut cfg = SystemConfig::with_transfw();
    cfg.watchdog.max_cycles = Some(10);
    let err = System::new(cfg).run(&app).unwrap_err();
    assert!(
        matches!(err, SimError::CycleCapExceeded { cap: 10, .. }),
        "unexpected error: {err}"
    );
}
