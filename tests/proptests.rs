//! Randomized model-checking tests on the core data structures and their
//! invariants, driven by the deterministic [`SimRng`] (the external
//! `proptest` crate is unavailable offline; these keep the same properties
//! with seeded exploration over many generated cases).

use std::collections::{HashMap, HashSet};

use transfw_sim::cuckoo::CuckooFilter;
use transfw_sim::mgpu::metrics::SharingProfile;
use transfw_sim::mgpu::{run_with_restore, System, SystemConfig};
use transfw_sim::ptw::{Location, PageTable, Pte};
use transfw_sim::sim_core::{ComponentEvent, EventQueue, FaultPlan, SimRng};
use transfw_sim::tlb::{Mshr, MshrOutcome, Tlb};
use transfw_sim::uvm::{MigrationPolicy, PageDirectory, PolicyKind};
use transfw_sim::workloads::{self, Pattern};

const CASES: u64 = 64;

/// The event queue pops events in nondecreasing time order and returns
/// exactly the pushed multiset, FIFO on ties.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x0E11 ^ case);
        let n = rng.gen_index(200);
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::new();
        let mut last = 0u64;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last, "time went backwards");
            last = t;
            popped.push((t, i));
        }
        assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated on tie");
            }
        }
    }
}

/// A cuckoo filter never yields a false negative under any interleaving of
/// inserts and deletes, and counts its content exactly.
#[test]
fn cuckoo_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xC0C0 ^ case);
        let mut filter = CuckooFilter::new(64, 4, 12);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for _ in 0..rng.gen_index(300) {
            let key = rng.gen_range(500);
            if rng.chance(0.5) {
                let _ = filter.insert(key);
                *model.entry(key).or_insert(0) += 1;
            } else if model.get(&key).copied().unwrap_or(0) > 0 {
                assert!(filter.remove(key), "present key must be removable");
                *model.get_mut(&key).unwrap() -= 1;
            }
        }
        let live: u32 = model.values().sum();
        assert_eq!(filter.len() as u32, live);
        for (key, &count) in &model {
            if count > 0 {
                assert!(filter.contains(*key), "false negative on {key}");
            }
        }
    }
}

/// TLB contents always match a reference LRU model per set.
#[test]
fn tlb_matches_lru_model() {
    const ENTRIES: usize = 16;
    const ASSOC: usize = 4;
    const SETS: u64 = (ENTRIES / ASSOC) as u64;
    for case in 0..CASES {
        let mut rng = SimRng::new(0x71B ^ case);
        let mut tlb: Tlb<u64> = Tlb::new(ENTRIES, ASSOC, 1);
        // model: per set, Vec of vpns in LRU -> MRU order.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); SETS as usize];
        for _ in 0..rng.gen_index(300) {
            let vpn = rng.gen_range(64);
            let is_fill = rng.chance(0.5);
            let set = &mut model[(vpn % SETS) as usize];
            if is_fill {
                tlb.fill(vpn, vpn * 10);
                if let Some(pos) = set.iter().position(|&v| v == vpn) {
                    set.remove(pos);
                } else if set.len() == ASSOC {
                    set.remove(0); // evict LRU
                }
                set.push(vpn);
            } else {
                let hit = tlb.lookup(vpn).copied();
                let model_hit = set.iter().position(|&v| v == vpn);
                assert_eq!(hit.is_some(), model_hit.is_some(), "hit mismatch on {vpn}");
                if let Some(pos) = model_hit {
                    assert_eq!(hit, Some(vpn * 10));
                    set.remove(pos);
                    set.push(vpn); // promote to MRU
                }
            }
        }
    }
}

/// Page-table node accounting: walks after arbitrary insert/remove
/// sequences agree with a set model, and access counts stay in range.
#[test]
fn page_table_walks_match_model() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x9A6E ^ case);
        let mut pt = PageTable::new(5);
        let mut model: HashSet<u64> = HashSet::new();
        for _ in 0..rng.gen_index(200) {
            let vpn = rng.gen_range(1 << 20);
            if rng.chance(0.5) {
                pt.insert(vpn, Pte::new(vpn, Location::Cpu));
                model.insert(vpn);
            } else {
                let removed = pt.remove(vpn).is_some();
                assert_eq!(removed, model.remove(&vpn));
            }
            let walk = pt.walk(vpn, None);
            assert_eq!(walk.pte.is_some(), model.contains(&vpn));
            assert!(walk.accesses >= 1 && walk.accesses <= 5);
            if model.contains(&vpn) {
                assert_eq!(walk.accesses, 5, "mapped cold walk reads all levels");
            }
        }
        assert_eq!(pt.mapped_pages(), model.len());
    }
}

/// The page directory preserves the single-home invariant under any fault
/// sequence, for every policy.
#[test]
fn directory_single_home_invariant() {
    let policies = [
        MigrationPolicy::OnTouch,
        MigrationPolicy::ReadReplication,
        MigrationPolicy::RemoteMapping { migrate_threshold: 3 },
    ];
    for case in 0..CASES {
        let mut rng = SimRng::new(0xD14EC ^ case);
        let policy = policies[rng.gen_index(policies.len())];
        let mut dir = PageDirectory::new(4, policy);
        for _ in 0..1 + rng.gen_index(199) {
            let vpn = rng.gen_range(40);
            let gpu = rng.gen_range(4) as u16;
            let is_write = rng.chance(0.5);
            let out = dir.resolve_fault(vpn, gpu, is_write);
            // The faulting GPU never invalidates itself.
            assert!(!out.invalidations.contains(&gpu));
            let page = dir.page(vpn).unwrap();
            // Home is always a single in-range location.
            if let Location::Gpu(h) = page.home {
                assert!(h < 4);
            }
            // A write never leaves foreign replicas behind.
            if is_write && policy == MigrationPolicy::ReadReplication {
                let replicas = page.replicas;
                assert!(
                    replicas == 0 || replicas == 1 << gpu,
                    "write left replicas 0b{replicas:b}"
                );
            }
        }
    }
}

/// MSHR: primaries and merges partition successful registrations, and
/// complete() returns exactly the registered waiters.
#[test]
fn mshr_waiter_conservation() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x351 ^ case);
        let mut mshr: Mshr<usize> = Mshr::new(8);
        let mut model: HashMap<u64, Vec<usize>> = HashMap::new();
        for i in 0..rng.gen_index(100) {
            let vpn = rng.gen_range(16);
            match mshr.register(vpn, i) {
                MshrOutcome::Primary => {
                    assert!(!model.contains_key(&vpn));
                    model.insert(vpn, vec![i]);
                }
                MshrOutcome::Merged => {
                    model.get_mut(&vpn).expect("merge implies entry").push(i);
                }
                MshrOutcome::Full => {
                    assert!(model.len() >= 8 && !model.contains_key(&vpn));
                }
            }
        }
        for (vpn, waiters) in model {
            assert_eq!(mshr.complete(vpn), waiters);
        }
        assert!(mshr.is_empty());
    }
}

/// Random GPU-offline schedules — any number of outages, any victims, any
/// (possibly overlapping) windows — preserve retire-exactly-once and
/// terminate, for a representative of each of the four access patterns.
/// The post-run invariant auditor runs inside `System::run`, so a clean
/// `Ok` here certifies the full protocol, not just the counters.
#[test]
fn random_gpu_offline_schedules_retire_exactly_once() {
    // One app per access pattern (Table III): partition / adjacent /
    // random / scatter-gather.
    let reps = ["AES", "KM", "MT", "PR"];
    for name in reps {
        let spec = workloads::app(name).unwrap();
        assert!(
            matches!(
                spec.pattern,
                Pattern::Partition | Pattern::Adjacent | Pattern::Random | Pattern::ScatterGather
            ),
            "{name} has an unexpected pattern"
        );
    }
    let patterns: HashSet<_> = reps
        .iter()
        .map(|n| format!("{:?}", workloads::app(n).unwrap().pattern))
        .collect();
    assert_eq!(patterns.len(), 4, "representatives must cover all patterns");

    for case in 0..12u64 {
        let mut rng = SimRng::new(0x0FF11E ^ case);
        let name = reps[rng.gen_index(reps.len())];
        let app = workloads::app(name).unwrap().scaled(0.04);
        let outages = 1 + rng.gen_index(3);
        let events: Vec<ComponentEvent> = (0..outages)
            .map(|_| ComponentEvent::GpuOffline {
                gpu: rng.gen_index(4),
                at_cycle: 100 + rng.gen_range(8_000),
                duration: 1 + rng.gen_range(6_000),
            })
            .collect();
        let mut cfg = SystemConfig::with_transfw();
        cfg.seed = case;
        cfg.faults = FaultPlan::components(events.clone());
        // Belt and braces: a schedule that wedges the protocol should fail
        // with a typed error, not hang the test suite.
        cfg.watchdog.max_cycles = Some(5_000_000);
        let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
            panic!("case {case} ({name}, {events:?}) failed: {e}");
        });
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "case {case} ({name}, {events:?}): retire-exactly-once violated"
        );
        assert_eq!(
            m.mem_instructions,
            (app.ctas * app.accesses_per_cta) as u64,
            "case {case} ({name}): lost instructions"
        );
        assert!(m.recovery.gpu_offline_events as usize >= 1);
    }
}

/// Random placement policy × random fault schedule: the transactional
/// ownership engine preserves retire-exactly-once under any combination,
/// and a crash at a random cycle restores bit-identically under
/// [`run_with_restore`] — page movement (migration, replication, prefetch)
/// is exactly as deterministic as the fault path it rides on.
#[test]
fn random_policy_and_fault_schedules_replay_bit_identically() {
    let reps = ["AES", "KM", "MT", "PR"];
    for case in 0..10u64 {
        let mut rng = SimRng::new(0x7011C7 ^ case);
        let name = reps[rng.gen_index(reps.len())];
        let app = workloads::app(name).unwrap().scaled(0.04);
        let kind = match rng.gen_index(4) {
            0 => PolicyKind::FirstTouch,
            1 => PolicyKind::DelayedMigration {
                threshold: 1 + rng.gen_range(6) as u32,
            },
            2 => PolicyKind::ReadDuplicate,
            _ => PolicyKind::PrefetchNeighborhood {
                radius: 1 + rng.gen_range(3) as u32,
            },
        };
        let faults = if rng.chance(0.5) {
            FaultPlan::components(vec![ComponentEvent::GpuOffline {
                gpu: rng.gen_index(4),
                at_cycle: 100 + rng.gen_range(6_000),
                duration: 1 + rng.gen_range(4_000),
            }])
        } else {
            FaultPlan::message_chaos(case, 0.02, 50 + rng.gen_range(300))
        };
        let mut cfg = SystemConfig::with_transfw();
        cfg.seed = case;
        cfg.placement = Some(kind);
        cfg.faults = faults;
        cfg.checkpoint_interval = Some(2_000);
        cfg.watchdog.max_cycles = Some(10_000_000);

        let baseline = System::new(cfg.clone())
            .run(&app)
            .unwrap_or_else(|e| panic!("case {case} ({name}, {kind:?}) failed: {e}"));
        assert_eq!(
            baseline.resilience.requests_retired, baseline.translation_requests,
            "case {case} ({name}, {kind:?}): retire-exactly-once violated"
        );

        let crash_at = 1_000 + rng.gen_range(20_000);
        let outcome = run_with_restore(&cfg, &app, crash_at)
            .unwrap_or_else(|e| panic!("case {case} ({name}, {kind:?}) restore failed: {e}"));
        let mut restored = outcome.metrics;
        if outcome.restored {
            assert_eq!(restored.recovery.restores_performed, 1);
            restored.recovery.restores_performed = 0; // the only permitted delta
        }
        assert_eq!(
            restored, baseline,
            "case {case} ({name}, {kind:?}): restore diverged from uninterrupted run"
        );
    }
}

/// Sharing-profile fractions always sum to 1 over nonempty input.
#[test]
fn sharing_fractions_sum_to_one() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x54A2E ^ case);
        let mut s = SharingProfile::new();
        for _ in 0..1 + rng.gen_index(299) {
            s.record(rng.gen_range(64), rng.gen_range(4) as u16, rng.chance(0.5));
        }
        let sum: f64 = s.access_fraction_by_degree(4).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }
}
