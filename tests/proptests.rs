//! Property-based tests on the core data structures and their invariants.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use transfw_sim::cuckoo::CuckooFilter;
use transfw_sim::mgpu::metrics::SharingProfile;
use transfw_sim::ptw::{Location, PageTable, Pte};
use transfw_sim::sim_core::EventQueue;
use transfw_sim::tlb::{Mshr, MshrOutcome, Tlb};
use transfw_sim::uvm::{MigrationPolicy, PageDirectory};

proptest! {
    /// The event queue pops events in nondecreasing time order and returns
    /// exactly the pushed multiset.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::new();
        let mut last = 0u64;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last, "time went backwards");
            last = t;
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Ties pop in insertion order.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated on tie");
            }
        }
    }

    /// A cuckoo filter never yields a false negative under any interleaving
    /// of inserts and deletes, and counts its content exactly.
    #[test]
    fn cuckoo_no_false_negatives(ops in prop::collection::vec((0u64..500, prop::bool::ANY), 0..300)) {
        let mut filter = CuckooFilter::new(64, 4, 12);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (key, insert) in ops {
            if insert {
                let _ = filter.insert(key);
                *model.entry(key).or_insert(0) += 1;
            } else if model.get(&key).copied().unwrap_or(0) > 0 {
                prop_assert!(filter.remove(key), "present key must be removable");
                *model.get_mut(&key).unwrap() -= 1;
            }
        }
        let live: u32 = model.values().sum();
        prop_assert_eq!(filter.len() as u32, live);
        for (key, &count) in &model {
            if count > 0 {
                prop_assert!(filter.contains(*key), "false negative on {key}");
            }
        }
    }

    /// TLB contents always match a reference LRU model per set.
    #[test]
    fn tlb_matches_lru_model(ops in prop::collection::vec((0u64..64, prop::bool::ANY), 0..300)) {
        const ENTRIES: usize = 16;
        const ASSOC: usize = 4;
        const SETS: u64 = (ENTRIES / ASSOC) as u64;
        let mut tlb: Tlb<u64> = Tlb::new(ENTRIES, ASSOC, 1);
        // model: per set, Vec of vpns in LRU -> MRU order.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); SETS as usize];
        for (vpn, is_fill) in ops {
            let set = &mut model[(vpn % SETS) as usize];
            if is_fill {
                tlb.fill(vpn, vpn * 10);
                if let Some(pos) = set.iter().position(|&v| v == vpn) {
                    set.remove(pos);
                } else if set.len() == ASSOC {
                    set.remove(0); // evict LRU
                }
                set.push(vpn);
            } else {
                let hit = tlb.lookup(vpn).copied();
                let model_hit = set.iter().position(|&v| v == vpn);
                prop_assert_eq!(hit.is_some(), model_hit.is_some(), "hit mismatch on {}", vpn);
                if let Some(pos) = model_hit {
                    prop_assert_eq!(hit, Some(vpn * 10));
                    set.remove(pos);
                    set.push(vpn); // promote to MRU
                }
            }
        }
    }

    /// Page-table node accounting: walks after arbitrary insert/remove
    /// sequences agree with a set model, and access counts stay in range.
    #[test]
    fn page_table_walks_match_model(ops in prop::collection::vec((0u64..1 << 20, prop::bool::ANY), 0..200)) {
        let mut pt = PageTable::new(5);
        let mut model: HashSet<u64> = HashSet::new();
        for (vpn, insert) in ops {
            if insert {
                pt.insert(vpn, Pte::new(vpn, Location::Cpu));
                model.insert(vpn);
            } else {
                let removed = pt.remove(vpn).is_some();
                prop_assert_eq!(removed, model.remove(&vpn));
            }
            let walk = pt.walk(vpn, None);
            prop_assert_eq!(walk.pte.is_some(), model.contains(&vpn));
            prop_assert!(walk.accesses >= 1 && walk.accesses <= 5);
            if model.contains(&vpn) {
                prop_assert_eq!(walk.accesses, 5, "mapped cold walk reads all levels");
            }
        }
        prop_assert_eq!(pt.mapped_pages(), model.len());
    }

    /// The page directory preserves the single-home invariant under any
    /// fault sequence, for every policy.
    #[test]
    fn directory_single_home_invariant(
        ops in prop::collection::vec((0u64..40, 0u16..4, prop::bool::ANY), 1..200),
        policy in 0..3usize,
    ) {
        let policy = [
            MigrationPolicy::OnTouch,
            MigrationPolicy::ReadReplication,
            MigrationPolicy::RemoteMapping { migrate_threshold: 3 },
        ][policy];
        let mut dir = PageDirectory::new(4, policy);
        for (vpn, gpu, is_write) in ops {
            let out = dir.resolve_fault(vpn, gpu, is_write);
            // The faulting GPU never invalidates itself.
            prop_assert!(!out.invalidations.contains(&gpu));
            let page = dir.page(vpn).unwrap();
            // Home is always a single location; replicas never include the
            // home GPU's bit redundantly counted as an invalidation target.
            if let Location::Gpu(h) = page.home {
                prop_assert!(h < 4);
            }
            // A write never leaves foreign replicas behind.
            if is_write && policy == MigrationPolicy::ReadReplication {
                let replicas = page.replicas;
                prop_assert!(replicas == 0 || replicas == 1 << gpu,
                    "write left replicas 0b{replicas:b}");
            }
        }
    }

    /// MSHR: primaries and merges partition successful registrations, and
    /// complete() returns exactly the registered waiters.
    #[test]
    fn mshr_waiter_conservation(ops in prop::collection::vec(0u64..16, 0..100)) {
        let mut mshr: Mshr<usize> = Mshr::new(8);
        let mut model: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, vpn) in ops.iter().copied().enumerate() {
            match mshr.register(vpn, i) {
                MshrOutcome::Primary => {
                    prop_assert!(!model.contains_key(&vpn));
                    model.insert(vpn, vec![i]);
                }
                MshrOutcome::Merged => {
                    model.get_mut(&vpn).expect("merge implies entry").push(i);
                }
                MshrOutcome::Full => {
                    prop_assert!(model.len() >= 8 && !model.contains_key(&vpn));
                }
            }
        }
        for (vpn, waiters) in model {
            prop_assert_eq!(mshr.complete(vpn), waiters);
        }
        prop_assert!(mshr.is_empty());
    }

    /// Sharing-profile fractions always sum to 1 over nonempty input.
    #[test]
    fn sharing_fractions_sum_to_one(
        ops in prop::collection::vec((0u64..64, 0u16..4, prop::bool::ANY), 1..300)
    ) {
        let mut s = SharingProfile::new();
        for (vpn, gpu, w) in ops {
            s.record(vpn, gpu, w);
        }
        let sum: f64 = s.access_fraction_by_degree(4).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }
}
