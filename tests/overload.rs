//! Overload-control acceptance tests: admission watermarks, retry budgets
//! with deterministic backoff, and per-peer circuit breakers on the
//! forwarding path. The subsystem ships disabled; with
//! [`OverloadConfig::default`] every run is bit-identical to a build
//! without it (the goldens in `resilience.rs` enforce that), and these
//! tests exercise the enabled side: graceful degradation under synthetic
//! overload, replay determinism, and the recovery interplay.

use transfw_sim::prelude::*;
use transfw_sim::uvm::PolicyKind;

/// An aggressive tuning for small test-scale runs: the default watermarks
/// are sized for full-scale queues, so tests engage the gates early. The
/// host high watermark still sits above the 1x-load queue peak of the
/// burst scenarios below, so a baseline-load run stays entirely unshedded.
fn test_overload() -> OverloadConfig {
    OverloadConfig {
        host_queue_high: 10,
        host_queue_low: 3,
        gpu_queue_high: 6,
        gpu_queue_low: 2,
        mshr_high: 24,
        mshr_low: 8,
        backoff_base: 200,
        backoff_cap: 3_200,
        ..OverloadConfig::enabled()
    }
}

/// Trans-FW knobs with the PRT/FT sized up: the burst workload's migration
/// churn at test scale otherwise produces enough fingerprint-collision
/// deletes to trip the post-run PRT false-negative audit (a pre-existing
/// property of the paper-sized 500-entry tables, independent of overload
/// control).
fn big_tables() -> mgpu::TransFwKnobs {
    let mut k = mgpu::TransFwKnobs::full();
    k.config.prt_fingerprints = 2_000;
    k.config.prt_fp_bits = 16;
    k.config.ft_fingerprints = 4_000;
    k.config.ft_fp_bits = 14;
    k
}

fn overloaded(mut cfg: SystemConfig, ov: OverloadConfig) -> SystemConfig {
    cfg.overload = ov;
    cfg
}

fn burst_app(load: u64) -> workloads::Burst {
    workloads::burst().scaled(0.05).with_load(load)
}

#[test]
fn disabled_overload_reports_nothing() {
    // The master switch defaults off: a run under heavy burst load must
    // finish with the overload stats exactly at `Default` — no sheds, no
    // budgeted retries, no breaker transitions, an empty latency histogram.
    let app = burst_app(8);
    let m = System::new(SystemConfig::with_transfw()).run(&app).unwrap();
    assert_eq!(m.overload, OverloadStats::default());
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn eightfold_load_sheds_background_before_any_demand_walk() {
    // The acceptance scenario: 8x offered load on the bursty open-loop
    // workload with the prefetching policy generating background traffic.
    // The run must complete with every demand request retired exactly
    // once, shed load must be entirely background class (prefetch /
    // migration) — demand is deferred, never rejected — and the demand
    // latency histogram must be populated with a bounded p99.
    let app = workloads::burst().scaled(0.1).with_load(8);
    let cfg = SystemConfig::builder()
        .gpus(4)
        .cus_per_gpu(4)
        .host_walkers(1)
        .seed(11)
        .transfw(Some(big_tables()))
        .placement(Some(PolicyKind::PrefetchNeighborhood { radius: 3 }))
        .overload(test_overload())
        .build();
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.bursts * app.burst_accesses) as u64);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    let ov = &m.overload;
    assert!(
        ov.background_shed() > 0,
        "8x load must engage the admission gate and shed background: {ov:?}"
    );
    assert_eq!(ov.demand_rejected, 0, "demand must never be rejected: {ov:?}");
    assert!(
        ov.background_shed() * 10 >= ov.total_shed() * 9,
        "at least 90% of shed traffic must be background class: {ov:?}"
    );
    assert_eq!(ov.demand_lat.count(), m.resilience.requests_retired);
    let p99 = ov.demand_lat.percentile_bound(0.99);
    assert!(
        p99 > 0 && p99 < m.total_cycles,
        "demand p99 bound must be positive and under the run length: {p99}"
    );
}

#[test]
fn shedding_is_monotone_in_offered_load() {
    // Same access train, same seed, same tuning: cranking only the
    // offered-load multiplier cannot reduce the amount of shed background
    // work. (The converse — load 1x sheds at most what 8x sheds — is the
    // ISSUE's "monotone non-increasing as load decreases" framing.)
    let cfg = |seed| {
        SystemConfig::builder()
            .gpus(4)
            .cus_per_gpu(4)
            .host_walkers(1)
            .seed(seed)
            .transfw(Some(big_tables()))
            .placement(Some(PolicyKind::DelayedMigration { threshold: 2 }))
            .overload(test_overload())
            .build()
    };
    let shed_at = |load| {
        let app = workloads::burst().scaled(0.1).with_load(load);
        let m = System::new(cfg(11)).run(&app).unwrap();
        assert_eq!(m.resilience.requests_retired, m.translation_requests);
        m.overload.total_shed()
    };
    let sweep: Vec<u64> = [1, 2, 4, 8].iter().map(|&l| shed_at(l)).collect();
    assert!(
        sweep.windows(2).all(|w| w[0] <= w[1]),
        "shedding must not decrease with load: {sweep:?} across 1x/2x/4x/8x"
    );
    assert!(sweep[3] > 0, "the 8x point of the sweep must actually shed");
}

#[test]
fn enabled_overload_replays_bit_identically_under_chaos() {
    // Replay determinism with everything on at once: chaos faults, the
    // private backoff-jitter RNG stream, breaker transitions. Two runs
    // must agree on every metric including the overload counters.
    let app = burst_app(4);
    let run = || {
        let mut cfg = overloaded(SystemConfig::with_transfw(), test_overload());
        cfg.faults = FaultPlan::message_chaos(77, 0.05, 300);
        System::new(cfg).run(&app).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "enabled overload run must replay bit-identically");
    assert_eq!(a.resilience.requests_retired, a.translation_requests);
}

#[test]
fn run_with_restore_is_bit_identical_with_overload_on() {
    // Crash-and-restore replays through the overload control plane: the
    // epoch digests now mix the breaker/gate/bucket state, so a restored
    // run diverging anywhere in the subsystem would be caught; the final
    // metrics must match the uninterrupted run exactly.
    let app = burst_app(4);
    let mut cfg = overloaded(SystemConfig::with_transfw(), test_overload());
    cfg.faults = FaultPlan::message_chaos(5, 0.03, 200);
    cfg.checkpoint_interval = Some(2_000);
    let baseline = System::new(cfg.clone()).run(&app).unwrap();
    let outcome = run_with_restore(&cfg, &app, 4_000).unwrap();
    let mut restored = outcome.metrics;
    if outcome.restored {
        assert_eq!(restored.recovery.restores_performed, 1);
        restored.recovery.restores_performed = 0; // the only permitted delta
    }
    assert_eq!(restored, baseline, "restore diverged with overload enabled");
}

#[test]
fn retry_budget_and_backoff_engage_under_loss() {
    // Heavy message loss trips the watchdog; with overload control on,
    // every granted retry spends a token and carries a deterministic
    // jittered backoff delay. The reliable fallback still guarantees
    // completion when budgets run dry.
    let app = workloads::app("MT").unwrap().scaled(0.2);
    let mut cfg = overloaded(SystemConfig::with_transfw(), test_overload());
    cfg.faults = FaultPlan::message_loss(3, 0.3);
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.mem_instructions, (app.ctas * app.accesses_per_cta) as u64);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert!(m.resilience.remote_timeouts > 0);
    assert!(
        m.overload.retries_budgeted > 0,
        "timeouts under loss must draw on the retry budget: {:?}",
        m.overload
    );
    assert!(
        m.overload.backoff_delay_total >= m.overload.retries_budgeted * 100,
        "each budgeted retry carries at least backoff_base/2 of delay: {:?}",
        m.overload
    );
    assert_eq!(m.resilience.retries, m.overload.retries_budgeted);
}

#[test]
fn tight_retry_budget_degrades_to_fallback_without_leaks() {
    // A one-token budget with no refill exhausts almost immediately: the
    // denied retries must degrade straight to the reliable host walk, and
    // the run still retires every request exactly once.
    let app = workloads::app("MT").unwrap().scaled(0.2);
    let ov = OverloadConfig {
        retry_budget: 1,
        retry_refill_permille: 0,
        ..test_overload()
    };
    let mut cfg = overloaded(SystemConfig::with_transfw(), ov);
    cfg.faults = FaultPlan::message_loss(3, 0.3);
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert!(
        m.overload.retry_tokens_denied > 0,
        "a one-token budget under 30% loss must deny retries: {:?}",
        m.overload
    );
    assert!(m.resilience.fallback_walks > 0);
}

#[test]
fn breaker_opens_against_a_failing_peer() {
    // Table pollution makes the FT forward to wrong owners, so borrowed
    // walks fail in bulk; the per-peer breakers must trip, short-circuit
    // later forwards to the host path, and the run must still complete.
    let app = workloads::app("MT").unwrap().scaled(0.2);
    let ov = OverloadConfig {
        breaker_min_samples: 4,
        breaker_window: 8,
        ..test_overload()
    };
    let mut cfg = overloaded(SystemConfig::with_transfw(), ov);
    cfg.faults = FaultPlan {
        table_pollution: 400,
        table_update_drop_prob: 0.3,
        ..FaultPlan::none()
    };
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert!(
        m.overload.breaker_opens > 0,
        "bulk forward failures must open a breaker: {:?}",
        m.overload
    );
    assert!(
        m.transfw.forwarded > 0,
        "the run must still forward before the breakers trip"
    );
}

#[test]
fn evicting_a_gpu_drains_its_breaker_and_run_survives() {
    // Satellite: recovery x overload interplay. A GPU eviction must drain
    // that peer's half-open probe queue and latch its breaker open (the
    // drain itself counts a breaker open when the breaker was not already
    // open), while the recovery protocol keeps the run correct.
    let app = burst_app(4);
    let ov = test_overload();
    let mut cfg = overloaded(SystemConfig::with_transfw(), ov);
    cfg.faults = FaultPlan::components(vec![ComponentEvent::GpuOffline {
        gpu: 1,
        at_cycle: 2_000,
        duration: 4_000,
    }]);
    let m = System::new(cfg).run(&app).unwrap();
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert_eq!(m.recovery.gpu_offline_events, 1);
    assert!(
        m.overload.breaker_opens >= 1,
        "the eviction must latch the victim's breaker open: {:?}",
        m.overload
    );
}

#[test]
fn random_burst_schedules_and_fault_plans_never_leak() {
    // Seeded pseudo-proptest (satellite): random bursty schedules x random
    // fault plans x every placement policy. Invariants: the run completes,
    // every request retires exactly once (the auditor inside `run` also
    // enforces this), demand is never rejected, and for each sampled combo
    // the shed count at 1x offered load never exceeds the same combo at 8x.
    use transfw_sim::sim_core::SimRng;
    let policies = [
        PolicyKind::FirstTouch,
        PolicyKind::DelayedMigration { threshold: 2 },
        PolicyKind::ReadDuplicate,
        PolicyKind::PrefetchNeighborhood { radius: 3 },
    ];
    for (case, &kind) in policies.iter().enumerate() {
        let mut rng = SimRng::new(0x0E7B_CA5E ^ case as u64);
        let base = workloads::Burst {
            bursts: 2 + rng.gen_index(3),
            burst_accesses: 8 + rng.gen_index(8),
            idle_gap: 1_000 + rng.gen_range(3_000),
            ctas: 48 + rng.gen_index(32),
            p_hot: 0.5 + rng.gen_f64() * 0.3,
            ..workloads::burst()
        };
        let plan = match rng.gen_index(3) {
            0 => FaultPlan::none(),
            1 => FaultPlan::message_loss(rng.next_u64(), 0.02 + rng.gen_f64() * 0.05),
            _ => FaultPlan::message_chaos(rng.next_u64(), 0.02 + rng.gen_f64() * 0.03, 200),
        };
        let seed = 1 + rng.gen_range(1_000);
        let run = |load: u64| {
            let cfg = SystemConfig::builder()
                .gpus(4)
                .cus_per_gpu(4)
                .host_walkers(1)
                .seed(seed)
                .transfw(Some(big_tables()))
                .placement(Some(kind))
                .overload(test_overload())
                .faults(plan.clone())
                .build();
            let app = base.with_load(load);
            let m = System::new(cfg).run(&app).unwrap_or_else(|e| {
                panic!("case {case} ({kind:?}, load {load}) failed: {e}")
            });
            assert_eq!(
                m.resilience.requests_retired, m.translation_requests,
                "case {case} ({kind:?}, load {load}): retire-exactly-once violated"
            );
            assert_eq!(
                m.overload.demand_rejected, 0,
                "case {case} ({kind:?}, load {load}): demand was rejected"
            );
            m
        };
        let low = run(1);
        let high = run(8);
        assert!(
            low.overload.total_shed() <= high.overload.total_shed(),
            "case {case} ({kind:?}): shed went down as load went up ({} at 1x, {} at 8x)",
            low.overload.total_shed(),
            high.overload.total_shed()
        );
    }
}
