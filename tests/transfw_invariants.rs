//! Invariants of the Trans-FW datapath, checked on full-system runs.

use transfw_sim::prelude::*;

const SCALE: f64 = 0.15;

fn run_transfw(app: &dyn Workload) -> RunMetrics {
    System::new(SystemConfig::with_transfw()).run(app).unwrap()
}

#[test]
fn transfw_counters_are_internally_consistent() {
    for spec in workloads::all_apps() {
        let app = spec.scaled(SCALE);
        let m = run_transfw(&app);
        let t = &m.transfw;
        assert!(
            t.remote_supplied + t.remote_failed <= t.forwarded,
            "{}: outcomes exceed forwards",
            app.name
        );
        assert!(
            t.cancelled_host_walks <= t.remote_supplied,
            "{}: cancellations need successful remote lookups",
            app.name
        );
        assert!(
            t.gmmu_bypassed <= m.translation_requests,
            "{}: more bypasses than requests",
            app.name
        );
        assert!(
            t.replicated_walks <= m.host_walks + t.forwarded,
            "{}: replicated walk accounting",
            app.name
        );
    }
}

#[test]
fn prt_false_positives_are_rare() {
    let app = workloads::app("MT").unwrap().scaled(SCALE);
    let m = run_transfw(&app);
    // With short-circuiting, a local fault after a GMMU walk means the PRT
    // said "maybe local" wrongly. The filter's design point is ~0.1%, but
    // page-group masking (8 pages/fingerprint) and in-flight migrations
    // push the observed rate up; it must still be a small fraction.
    let rate = m.transfw.prt_false_positives as f64 / m.translation_requests.max(1) as f64;
    assert!(rate < 0.2, "PRT false-positive rate {rate}");
}

#[test]
fn remote_supply_succeeds_often_under_sharing() {
    let app = workloads::app("PR").unwrap().scaled(0.3);
    let m = run_transfw(&app);
    assert!(m.transfw.forwarded > 0, "PR must trigger forwarding");
    let success = m.transfw.remote_supplied as f64
        / (m.transfw.remote_supplied + m.transfw.remote_failed).max(1) as f64;
    assert!(
        success > 0.4,
        "most borrowed walks should succeed (paper: 88.2% remote hits), got {success}"
    );
}

#[test]
fn short_circuit_reduces_gmmu_walk_traffic() {
    let app = workloads::app("MT").unwrap().scaled(0.3);
    let base = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let tfw = run_transfw(&app);
    // §V-A: Trans-FW cuts total GMMU PT-walk memory accesses (the PRT skips
    // doomed walks; borrowed walks add some back).
    assert!(
        (tfw.gmmu_walk_accesses as f64) < base.gmmu_walk_accesses as f64 * 1.1,
        "GMMU walk traffic should not grow: {} vs {}",
        tfw.gmmu_walk_accesses,
        base.gmmu_walk_accesses
    );
}

#[test]
fn forwarding_threshold_zero_forwards_most() {
    let app = workloads::app("PR").unwrap().scaled(SCALE);
    let mk = |threshold: f64| {
        let knobs = TransFwKnobs {
            config: TransFwConfig {
                forward_threshold: threshold,
                ..TransFwConfig::default()
            },
            gmmu_short_circuit: true,
            host_forwarding: true,
        };
        System::new(SystemConfig {
            transfw: Some(knobs),
            ..SystemConfig::baseline()
        })
        .run(&app)
        .unwrap()
    };
    let eager = mk(0.0);
    let lazy = mk(2.0);
    assert!(
        eager.transfw.forwarded > lazy.transfw.forwarded,
        "threshold 0 must forward more than threshold 2: {} vs {}",
        eager.transfw.forwarded,
        lazy.transfw.forwarded
    );
}

#[test]
fn ablations_are_weaker_than_full_mechanism() {
    let app = workloads::app("MT").unwrap().scaled(0.3);
    let base = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let full = run_transfw(&app);
    let prt_only = System::new(SystemConfig {
        transfw: Some(TransFwKnobs {
            config: TransFwConfig::default(),
            gmmu_short_circuit: true,
            host_forwarding: false,
        }),
        ..SystemConfig::baseline()
    })
    .run(&app).unwrap();
    let full_speedup = full.speedup_vs(&base);
    let prt_speedup = prt_only.speedup_vs(&base);
    assert!(
        full_speedup > prt_speedup * 0.95,
        "full Trans-FW ({full_speedup}) should beat or match PRT-only ({prt_speedup})"
    );
    assert_eq!(prt_only.transfw.forwarded, 0, "no FT => no forwarding");
}

#[test]
fn transfw_reduces_host_queue_wait() {
    let app = workloads::app("SC").unwrap().scaled(0.3);
    let base = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let tfw = run_transfw(&app);
    assert!(
        tfw.breakdown.host_queue < base.breakdown.host_queue,
        "Fig. 12: host PW-queue waiting must shrink: {} vs {}",
        tfw.breakdown.host_queue,
        base.breakdown.host_queue
    );
}

#[test]
fn no_transfw_structures_in_baseline() {
    let app = workloads::app("KM").unwrap().scaled(SCALE);
    let m = System::new(SystemConfig::baseline()).run(&app).unwrap();
    assert_eq!(m.transfw.gmmu_bypassed, 0);
    assert_eq!(m.transfw.forwarded, 0);
    assert_eq!(m.transfw.remote_supplied, 0);
}

#[test]
fn area_model_matches_paper_budget() {
    use transfw_sim::transfw::{AreaModel, TransFwConfig};
    let a = AreaModel::paper_baseline(&TransFwConfig::default());
    assert!((a.prt_kb() - 0.79).abs() < 0.01);
    assert!((a.ft_kb() - 2.68).abs() < 0.01);
    assert!(a.prt_vs_l2_tlb() < 0.05);
    assert!(a.ft_vs_host_tlb() < 0.05);
}
