//! End-to-end integration tests: the full system runs every workload to
//! completion and its metrics obey basic accounting invariants.

use transfw_sim::prelude::*;

const SCALE: f64 = 0.1;

fn run(cfg: SystemConfig, app: &dyn Workload) -> RunMetrics {
    System::new(cfg).run(app).unwrap()
}

#[test]
fn every_app_runs_to_completion_on_baseline() {
    for spec in workloads::all_apps() {
        let app = spec.scaled(SCALE);
        let m = run(SystemConfig::baseline(), &app);
        assert!(m.total_cycles > 0, "{}", app.name);
        let expected = (app.ctas * app.accesses_per_cta) as u64;
        assert_eq!(m.mem_instructions, expected, "{} instruction count", app.name);
    }
}

#[test]
fn every_app_runs_to_completion_on_transfw() {
    for spec in workloads::all_apps() {
        let app = spec.scaled(SCALE);
        let m = run(SystemConfig::with_transfw(), &app);
        assert!(m.total_cycles > 0, "{}", app.name);
        assert_eq!(
            m.mem_instructions,
            (app.ctas * app.accesses_per_cta) as u64,
            "{}",
            app.name
        );
    }
}

#[test]
fn tlb_accounting_is_consistent() {
    let app = workloads::app("MT").unwrap().scaled(SCALE);
    let m = run(SystemConfig::baseline(), &app);
    // Every memory instruction does exactly one L1 lookup.
    assert_eq!(m.l1_hits + m.l1_misses, m.mem_instructions);
    // Every L1 miss does at most one L2 lookup (MSHR-full retries repeat).
    assert!(m.l2_hits + m.l2_misses >= m.l1_misses);
    // Translation requests are L2 misses that were not coalesced.
    assert!(m.translation_requests <= m.l2_misses);
    assert!(m.translation_requests > 0);
}

#[test]
fn faults_only_happen_with_page_sharing() {
    let aes = workloads::app("AES").unwrap().scaled(SCALE);
    let mt = workloads::app("MT").unwrap().scaled(SCALE);
    let m_aes = run(SystemConfig::baseline(), &aes);
    let m_mt = run(SystemConfig::baseline(), &mt);
    assert!(
        m_aes.pfpki() < 3.0,
        "partitioned AES should fault rarely, got PFPKI {}",
        m_aes.pfpki()
    );
    assert!(
        m_mt.pfpki() > 10.0 * m_aes.pfpki().max(0.01),
        "scatter-gather MT must fault far more than AES"
    );
}

#[test]
fn runs_are_deterministic() {
    let app = workloads::app("SC").unwrap().scaled(SCALE);
    let a = run(SystemConfig::baseline(), &app);
    let b = run(SystemConfig::baseline(), &app);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.local_faults, b.local_faults);
    assert_eq!(a.l2_misses, b.l2_misses);
}

#[test]
fn seed_changes_timing_but_not_structure() {
    let app = workloads::app("SC").unwrap().scaled(SCALE);
    let a = run(SystemConfig::baseline(), &app);
    let mut cfg = SystemConfig::baseline();
    cfg.seed = 999;
    let b = run(cfg, &app);
    assert_eq!(a.mem_instructions, b.mem_instructions);
}

#[test]
fn transfw_speeds_up_sharing_heavy_apps() {
    // MT is the paper's best case (>2x at full scale); even at reduced
    // scale Trans-FW must win clearly.
    let app = workloads::app("MT").unwrap().scaled(0.3);
    let base = run(SystemConfig::baseline(), &app);
    let tfw = run(SystemConfig::with_transfw(), &app);
    let speedup = tfw.speedup_vs(&base);
    assert!(speedup > 1.1, "MT speedup only {speedup}");
}

#[test]
fn transfw_is_harmless_for_partitioned_apps() {
    let app = workloads::app("AES").unwrap().scaled(0.3);
    let base = run(SystemConfig::baseline(), &app);
    let tfw = run(SystemConfig::with_transfw(), &app);
    let speedup = tfw.speedup_vs(&base);
    assert!(
        (0.9..1.2).contains(&speedup),
        "AES should be insensitive, got {speedup}"
    );
}

#[test]
fn breakdown_covers_fault_path() {
    // Needs enough access density for sharing faults to dominate.
    let app = workloads::app("PR").unwrap().scaled(0.3);
    let m = run(SystemConfig::baseline(), &app);
    assert!(m.breakdown.total() > 0);
    assert!(
        m.breakdown.fault_total() > m.breakdown.total() / 2,
        "fault handling must dominate PR's L2-miss latency (paper: 86.1% avg)"
    );
    let f = m.breakdown.fractions();
    assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn sharing_profile_matches_pattern_classes() {
    let aes = workloads::app("AES").unwrap().scaled(SCALE);
    let m = run(SystemConfig::baseline(), &aes);
    let deg = m.sharing.access_fraction_by_degree(4);
    assert!(deg[0] > 0.95, "AES accesses should be private, got {deg:?}");

    // ST's ghost zones need enough access density to register as shared.
    let st = workloads::app("ST").unwrap().scaled(0.4);
    let m = run(SystemConfig::baseline(), &st);
    let deg = m.sharing.access_fraction_by_degree(4);
    assert!(
        deg[1] > 0.1,
        "ST halos should produce 2-GPU sharing, got {deg:?}"
    );

    let pr = workloads::app("PR").unwrap().scaled(0.4);
    let m = run(SystemConfig::baseline(), &pr);
    let deg = m.sharing.access_fraction_by_degree(4);
    assert!(
        deg[1] + deg[2] + deg[3] > 0.15,
        "PR should share widely, got {deg:?}"
    );
}

#[test]
fn ideal_knobs_improve_performance() {
    let app = workloads::app("MT").unwrap().scaled(SCALE);
    let base = run(SystemConfig::baseline(), &app);
    let no_faults = run(
        SystemConfig {
            ideal: mgpu::IdealKnobs {
                no_local_faults: true,
                ..Default::default()
            },
            ..SystemConfig::baseline()
        },
        &app,
    );
    assert_eq!(no_faults.local_faults, 0, "ideal: no faults at all");
    assert!(
        no_faults.total_cycles < base.total_cycles,
        "eliminating faults must help MT"
    );
    let inf_walk = run(
        SystemConfig {
            ideal: mgpu::IdealKnobs {
                infinite_walkers: true,
                ..Default::default()
            },
            ..SystemConfig::baseline()
        },
        &app,
    );
    // At reduced scale the idealisation is within noise of the baseline;
    // the Fig. 4 bench shows the full-scale gain.
    assert!(inf_walk.total_cycles as f64 <= base.total_cycles as f64 * 1.1);
    assert_eq!(inf_walk.breakdown.gmmu_queue, 0);
    assert_eq!(inf_walk.breakdown.host_queue, 0);
}

#[test]
fn four_level_table_walks_less() {
    let app = workloads::app("KM").unwrap().scaled(SCALE);
    let five = run(SystemConfig::baseline(), &app);
    let four = run(
        SystemConfig::builder().page_table_levels(4).build(),
        &app,
    );
    // Same misses, fewer memory accesses per cold walk.
    assert!(four.gmmu_walk_accesses + four.host_walk_accesses > 0);
    let per_walk_5 = five.host_walk_accesses as f64 / five.host_walks.max(1) as f64;
    let per_walk_4 = four.host_walk_accesses as f64 / four.host_walks.max(1) as f64;
    assert!(
        per_walk_4 <= per_walk_5 + 0.5,
        "4-level walks must not touch more memory: {per_walk_4} vs {per_walk_5}"
    );
}

#[test]
fn large_pages_improve_tlb_reach() {
    let app = workloads::app("AES").unwrap().scaled(SCALE);
    let small = run(SystemConfig::baseline(), &app);
    let large = run(SystemConfig::builder().page_size_bits(21).build(), &app);
    assert!(
        large.l2_misses < small.l2_misses,
        "2 MB pages must cut L2 TLB misses: {} vs {}",
        large.l2_misses,
        small.l2_misses
    );
}

#[test]
fn ml_models_run_end_to_end() {
    for model in [workloads::vgg16().scaled(0.1), workloads::resnet18().scaled(0.1)] {
        let base = run(SystemConfig::baseline(), &model);
        let tfw = run(SystemConfig::with_transfw(), &model);
        assert!(base.total_cycles > 0);
        assert!(tfw.total_cycles > 0);
        assert_eq!(base.mem_instructions, tfw.mem_instructions);
    }
}
