//! Integration tests for the placement policies and far-fault modes the
//! paper evaluates (§§V-D/E/F/G).

use transfw_sim::prelude::*;
use transfw_sim::uvm::MigrationPolicy;

const SCALE: f64 = 0.1;

fn run_with(policy: MigrationPolicy, app: &dyn Workload) -> RunMetrics {
    System::new(SystemConfig { policy, ..SystemConfig::baseline() }).run(app).unwrap()
}

#[test]
fn replication_cuts_migrations_for_read_shared_apps() {
    // SC's shared input image is read-mostly: replication should replace
    // most migrations with replications.
    let app = workloads::app("SC").unwrap().scaled(SCALE);
    let on_touch = run_with(MigrationPolicy::OnTouch, &app);
    let repl = run_with(MigrationPolicy::ReadReplication, &app);
    assert!(repl.directory.replications > 0, "replicas must be created");
    assert!(
        repl.directory.migrations < on_touch.directory.migrations,
        "replication must cut migrations: {} vs {}",
        repl.directory.migrations,
        on_touch.directory.migrations
    );
}

#[test]
fn replication_helps_read_shared_more_than_write_shared() {
    // Needs full sharing density for the replication benefit to show.
    let sc = workloads::app("SC").unwrap().scaled(0.4); // read-shared
    let mt = workloads::app("MT").unwrap().scaled(0.4); // write-shared
    let sc_gain = run_with(MigrationPolicy::OnTouch, &sc).total_cycles as f64
        / run_with(MigrationPolicy::ReadReplication, &sc).total_cycles as f64;
    let mt_gain = run_with(MigrationPolicy::OnTouch, &mt).total_cycles as f64
        / run_with(MigrationPolicy::ReadReplication, &mt).total_cycles as f64;
    assert!(
        sc_gain > mt_gain * 0.97,
        "read replication must help SC ({sc_gain}) at least as much as write-heavy MT ({mt_gain})"
    );
}

#[test]
fn write_invalidations_happen_on_write_shared_apps() {
    let mt = workloads::app("MT").unwrap().scaled(SCALE);
    let m = run_with(MigrationPolicy::ReadReplication, &mt);
    assert!(
        m.directory.write_invalidations > 0,
        "MT writes shared pages: ESI must invalidate replicas"
    );
}

#[test]
fn remote_mapping_reduces_page_movement() {
    let app = workloads::app("PR").unwrap().scaled(SCALE);
    let on_touch = run_with(MigrationPolicy::OnTouch, &app);
    let remote = run_with(
        MigrationPolicy::RemoteMapping {
            migrate_threshold: 8,
        },
        &app,
    );
    assert!(remote.directory.remote_maps > 0, "mappings must be created");
    assert!(
        remote.directory.migrations < on_touch.directory.migrations,
        "remote mapping must cut migrations: {} vs {}",
        remote.directory.migrations,
        on_touch.directory.migrations
    );
}

#[test]
fn remote_mapping_promotes_hot_pages() {
    let app = workloads::app("KM").unwrap().scaled(SCALE);
    let remote = run_with(
        MigrationPolicy::RemoteMapping {
            migrate_threshold: 2,
        },
        &app,
    );
    assert!(
        remote.directory.promotions > 0,
        "KM's hot centroids must trip the access counters"
    );
}

#[test]
fn software_driver_is_slower_than_host_mmu() {
    let app = workloads::app("MT").unwrap().scaled(SCALE);
    let hw = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let sw = System::new(
        SystemConfig::builder()
            .fault_mode(mgpu::FarFaultMode::UvmDriver)
            .build(),
    )
    .run(&app).unwrap();
    assert!(sw.driver_batches > 0, "driver must process batches");
    assert!(
        sw.total_cycles > hw.total_cycles,
        "software fault handling must be slower (Fig. 2): {} vs {}",
        sw.total_cycles,
        hw.total_cycles
    );
}

#[test]
fn transfw_helps_on_driver_mode_too() {
    let app = workloads::app("MT").unwrap().scaled(0.3);
    let base = System::new(
        SystemConfig::builder()
            .fault_mode(mgpu::FarFaultMode::UvmDriver)
            .build(),
    )
    .run(&app).unwrap();
    let tfw = System::new(SystemConfig {
        transfw: Some(TransFwKnobs::full()),
        ..SystemConfig::builder()
            .fault_mode(mgpu::FarFaultMode::UvmDriver)
            .build()
    })
    .run(&app).unwrap();
    assert!(
        tfw.speedup_vs(&base) > 1.05,
        "Fig. 26: Trans-FW must help driver mode, got {}",
        tfw.speedup_vs(&base)
    );
}

#[test]
fn driver_scaling_degrades_with_gpu_count() {
    // Fig. 2(a): the software/hardware gap widens with more GPUs.
    let app = workloads::app("PR").unwrap().scaled(SCALE);
    let gap = |gpus: u16| {
        let hw = System::new(SystemConfig::builder().gpus(gpus).build()).run(&app).unwrap();
        let sw = System::new(
            SystemConfig::builder()
                .gpus(gpus)
                .fault_mode(mgpu::FarFaultMode::UvmDriver)
                .build(),
        )
        .run(&app).unwrap();
        sw.total_cycles as f64 / hw.total_cycles as f64
    };
    let g4 = gap(4);
    let g16 = gap(16);
    assert!(
        g16 > g4 * 0.9,
        "software gap should not shrink substantially with GPU count: {g4} -> {g16}"
    );
}

#[test]
fn stc_pwcache_works_end_to_end() {
    let app = workloads::app("KM").unwrap().scaled(SCALE);
    let utc = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let stc = System::new(SystemConfig::builder().pwc_kind(mgpu::PwcKind::Stc).build()).run(&app).unwrap();
    assert!(stc.total_cycles > 0);
    // Both organisations should be in the same performance ballpark.
    let ratio = stc.total_cycles as f64 / utc.total_cycles as f64;
    assert!((0.5..2.0).contains(&ratio), "STC/UTC ratio {ratio}");
}

#[test]
fn asap_reduces_walk_cycles() {
    let app = workloads::app("PR").unwrap().scaled(SCALE);
    let base = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let asap = System::new(SystemConfig::builder().asap(Some(1.0)).build()).run(&app).unwrap();
    // With perfect ASAP, walk latency collapses to ~1 access per walk.
    assert!(
        asap.breakdown.host_walk < base.breakdown.host_walk,
        "perfect ASAP must cut host walk cycles: {} vs {}",
        asap.breakdown.host_walk,
        base.breakdown.host_walk
    );
}

#[test]
fn least_tlb_adds_remote_tlb_hits() {
    let app = workloads::app("KM").unwrap().scaled(SCALE);
    let base = System::new(SystemConfig::baseline()).run(&app).unwrap();
    let least = System::new(SystemConfig::builder().least_tlb(true).build()).run(&app).unwrap();
    // Remote L2 probes satisfy some misses before they become walks.
    assert!(
        least.translation_requests <= base.translation_requests,
        "least-TLB should not create more walks: {} vs {}",
        least.translation_requests,
        base.translation_requests
    );
}
