//! Regression tests for the digest-completeness hazards the flow-aware
//! simlint pass surfaced: `Ft.mask_bits`, `Ft.gpu_count` and
//! `Prt.mask_bits` were invisible to their `state_digest` functions, so a
//! restored run whose filter geometry somehow drifted could replay on a
//! divergent table without the checkpoint prefix check noticing. Each
//! fixed field gets a sensitivity test (digest must move when the field
//! does), and `run_with_restore` proves replay stays bit-identical with
//! the enriched digests under non-default geometry.

use transfw_sim::prelude::*;
use transfw_sim::transfw::{Ft, Prt};

/// Two configs differing only in `vpn_mask_bits`.
fn masked(bits: u32) -> TransFwConfig {
    TransFwConfig {
        vpn_mask_bits: bits,
        ..TransFwConfig::default()
    }
}

#[test]
fn ft_digest_is_sensitive_to_mask_bits() {
    let a = Ft::new(&masked(2), 4);
    let b = Ft::new(&masked(3), 4);
    assert_ne!(
        a.state_digest(),
        b.state_digest(),
        "mask_bits must flow into the FT digest"
    );
}

#[test]
fn ft_digest_is_sensitive_to_gpu_count() {
    let cfg = TransFwConfig::default();
    let a = Ft::new(&cfg, 4);
    let b = Ft::new(&cfg, 8);
    assert_ne!(
        a.state_digest(),
        b.state_digest(),
        "gpu_count must flow into the FT digest"
    );
}

#[test]
fn prt_digest_is_sensitive_to_mask_bits() {
    let a = Prt::new(&masked(2));
    let b = Prt::new(&masked(3));
    assert_ne!(
        a.state_digest(),
        b.state_digest(),
        "mask_bits must flow into the PRT digest"
    );
}

#[test]
fn restore_is_bit_identical_with_nondefault_filter_geometry() {
    // End-to-end: crash-and-restore through checkpoints whose epoch
    // digests now mix the filter geometry, under a mask width no other
    // test exercises. Divergence anywhere in the PRT/FT digest path would
    // fail the checkpoint prefix verification inside run_with_restore.
    let app = workloads::app("MT").unwrap().scaled(0.1);
    let mut cfg = SystemConfig::with_transfw();
    if let Some(knobs) = cfg.transfw.as_mut() {
        knobs.config.vpn_mask_bits = 5;
    }
    cfg.checkpoint_interval = Some(2_000);
    let baseline = System::new(cfg.clone()).run(&app).unwrap();
    let outcome = run_with_restore(&cfg, &app, 4_000).unwrap();
    let mut restored = outcome.metrics;
    if outcome.restored {
        assert_eq!(restored.recovery.restores_performed, 1);
        restored.recovery.restores_performed = 0; // the only permitted delta
    }
    assert_eq!(
        restored, baseline,
        "restore diverged under non-default vpn_mask_bits"
    );
}
