//! Smoke tests for every per-figure experiment harness: each report has
//! the right shape and finite, sensible values at reduced scale.

use experiments::{Report, RunOpts};

fn opts() -> RunOpts {
    RunOpts {
        scale: 0.06,
        seeds: vec![1],
    }
}

fn assert_finite(r: &Report) {
    for (label, values) in &r.rows {
        for v in values {
            assert!(v.is_finite(), "{}: row {label} has {v}", r.title);
        }
    }
}

fn assert_app_rows(r: &Report) {
    assert_eq!(r.rows.len(), 11, "{}: 10 apps + mean", r.title);
    assert!(r.rows.iter().any(|(l, _)| l == "MT"), "{}", r.title);
    assert!(r.rows.last().unwrap().0 == "mean", "{}", r.title);
    assert_finite(r);
}

#[test]
fn table3_reports_pfpki() {
    let r = experiments::table3::run(&opts());
    assert_eq!(r.rows.len(), 10);
    assert_finite(&r);
    let mt = r.value("MT", 0).unwrap();
    let aes = r.value("AES", 0).unwrap();
    assert!(mt > aes, "MT PFPKI ({mt}) must exceed AES ({aes})");
}

#[test]
fn fig02_scaling_and_per_app() {
    let reports = experiments::fig02::run(&opts());
    assert_eq!(reports.len(), 2);
    let scaling = &reports[0];
    assert_eq!(scaling.rows.len(), 4, "4/8/16/32 GPUs");
    assert_finite(scaling);
    // Hardware at 4 GPUs is the normalisation point.
    assert!((scaling.value("4 GPUs", 0).unwrap() - 1.0).abs() < 1e-9);
    // Software is never faster than hardware.
    for (label, v) in &scaling.rows {
        assert!(v[1] >= v[0] * 0.95, "{label}: sw {} vs hw {}", v[1], v[0]);
    }
    assert_app_rows(&reports[1]);
    assert!(reports[1].mean(0).unwrap() >= 1.0, "hw beats sw on average");
}

#[test]
fn fig03_fractions_sum_to_one() {
    let r = experiments::fig03::run(&opts());
    assert_app_rows(&r);
    for (label, v) in &r.rows {
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{label}: fractions sum {sum}");
    }
}

#[test]
fn fig04_ideals_do_not_slow_down() {
    let r = experiments::fig04::run(&opts());
    assert_app_rows(&r);
    // The no-faults ideal (col 3) is the paper's biggest win (2.2x avg).
    let mean = r.mean(3).unwrap();
    assert!(mean > 1.0, "eliminating faults must help on average: {mean}");
}

#[test]
fn fig05_06_rates_are_probabilities() {
    for r in experiments::fig05_06::run(&opts()) {
        assert_app_rows(&r);
        for (label, v) in &r.rows {
            for &x in v {
                assert!((-1e-9..=1.0 + 1e-9).contains(&x), "{label}: {x}");
            }
        }
    }
}

#[test]
fn fig07_degrees_sum_to_one() {
    let r = experiments::fig07::run(&opts());
    assert_app_rows(&r);
    for (label, v) in &r.rows {
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{label}: {sum}");
    }
    // AES stays private (sharing *degrees* need full-scale access density;
    // the fig07_sharing bench shows the paper-shaped distribution).
    assert!(r.value("AES", 0).unwrap() > 0.9);
}

#[test]
fn fig08_remote_hits_high() {
    let r = experiments::fig08::run(&opts());
    assert_app_rows(&r);
    let mean = r.mean(0).unwrap();
    assert!(mean > 0.5, "remote PW-cache hits should be common: {mean}");
}

#[test]
fn fig11_headline_speedup() {
    let r = experiments::fig11::run(&opts());
    assert_app_rows(&r);
    let mean = r.mean(0).unwrap();
    assert!(mean > 1.0, "Trans-FW must win on average: {mean}");
}

#[test]
fn fig12_reductions_bounded() {
    let r = experiments::fig12::run(&opts());
    assert_app_rows(&r);
    for (label, v) in &r.rows {
        for &x in v {
            assert!((0.0..=1.0).contains(&x), "{label}: reduction {x}");
        }
    }
}

#[test]
fn fig13_fig14_shapes() {
    let r = experiments::fig13::run(&opts());
    assert_app_rows(&r);
    let r = experiments::fig14::run(&opts());
    assert_app_rows(&r);
    for (label, v) in &r.rows {
        assert!((0.0..=1.0).contains(&v[0]), "{label}: {v:?}");
    }
}

#[test]
fn fig15_fig16_sweeps() {
    let r = experiments::fig15::run(&opts());
    assert_app_rows(&r);
    assert_eq!(r.headers.len(), 4);
    let r = experiments::fig16::run(&opts());
    assert_app_rows(&r);
    assert_eq!(r.headers.len(), 3);
}

#[test]
fn fig17_gpu_scaling() {
    let r = experiments::fig17::run(&opts());
    assert_app_rows(&r);
}

#[test]
fn fig18_more_walkers_help_baseline() {
    let r = experiments::fig18::run(&opts());
    assert_eq!(r.rows.len(), 5);
    assert_finite(&r);
    let first = r.rows.first().unwrap().1[0];
    let last = r.rows.last().unwrap().1[0];
    assert!((first - 1.0).abs() < 1e-9, "(4,8) baseline is the reference");
    assert!(last >= first, "more walkers must not hurt the baseline");
}

#[test]
fn fig19_to_fig27_variants() {
    for r in [
        experiments::fig19::run(&opts()),
        experiments::fig20::run(&opts()),
        experiments::fig22::run(&opts()),
        experiments::fig23::run(&opts()),
        experiments::fig25::run(&opts()),
        experiments::fig26::run(&opts()),
        experiments::fig27::run(&opts()),
    ] {
        assert_app_rows(&r);
    }
}

#[test]
fn fig21_latency_sweep_declines() {
    let r = experiments::fig21::run(&opts());
    assert_eq!(r.rows.len(), 6);
    assert_finite(&r);
    let first = r.rows[1].1[0]; // 1x dram
    let last = r.rows.last().unwrap().1[0]; // 16x dram
    assert!(
        last <= first + 0.15,
        "speedup should not grow with remote latency: {first} -> {last}"
    );
}

#[test]
fn fig24_rw_split() {
    let r = experiments::fig24::run(&opts());
    assert_app_rows(&r);
    let mt_writes = r.value("MT", 1).unwrap();
    let sc_writes = r.value("SC", 1).unwrap();
    assert!(
        mt_writes > sc_writes,
        "MT must be more write-intensive than SC: {mt_writes} vs {sc_writes}"
    );
}

#[test]
fn fig28_fig29_combinations() {
    let r = experiments::fig28::run(&opts());
    assert_app_rows(&r);
    let r = experiments::fig29::run(&opts());
    assert_app_rows(&r);
}

#[test]
fn fig30_ml_models() {
    let r = experiments::fig30::run(&opts());
    assert_eq!(r.rows.len(), 3, "VGG16, ResNet18, mean");
    assert_finite(&r);
}
